(* Dialect verifier tests: every dialect's per-op invariants accept the
   builders' output and reject malformed ops. *)

let () = Shmls_dialects.Register.all ()

open Shmls_ir
module D = Shmls_dialects

let f64 = Ty.F64

let expect_invalid what op =
  match Dialect.verify_op op with
  | Error _ -> ()
  | Ok () -> Alcotest.failf "%s: expected verification failure" what

let expect_valid what op =
  match Dialect.verify_op op with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "%s: unexpected failure: %s" what (Shmls_support.Err.to_string e)

let in_block f =
  let blk = Ir.Block.create () in
  f (Builder.at_end blk)

let test_registry () =
  Alcotest.(check bool) "arith registered" true (Dialect.is_registered "arith.addf");
  Alcotest.(check bool) "hls registered" true (Dialect.is_registered "hls.dataflow");
  Alcotest.(check bool) "unknown" false (Dialect.is_registered "nope.op");
  let dialects = Dialect.registered_dialects () in
  List.iter
    (fun d ->
      Alcotest.(check bool) (d ^ " present") true (List.mem d dialects))
    [ "arith"; "builtin"; "func"; "hls"; "llvm"; "math"; "memref"; "scf"; "stencil" ]

let test_traits () =
  Alcotest.(check bool) "addf pure" true (Dialect.has_trait "arith.addf" Dialect.Pure);
  Alcotest.(check bool) "addf commutative" true
    (Dialect.has_trait "arith.addf" Dialect.Commutative);
  Alcotest.(check bool) "subf not commutative" false
    (Dialect.has_trait "arith.subf" Dialect.Commutative);
  Alcotest.(check bool) "store not pure" false
    (Dialect.has_trait "memref.store" Dialect.Pure);
  Alcotest.(check bool) "return terminator" true
    (Dialect.has_trait "func.return" Dialect.Terminator);
  Alcotest.(check bool) "func isolated" true
    (Dialect.has_trait "func.func" Dialect.Isolated_from_above)

let test_arith_constant () =
  in_block (fun b ->
      let c = D.Arith.constant_f b 1.5 in
      expect_valid "float constant" (Option.get (Ir.Value.defining_op c)));
  let bad =
    Ir.Op.create ~name:"arith.constant" ~result_tys:[ Ty.F64 ]
      ~attrs:[ ("value", Attr.Int 3) ] ()
  in
  expect_invalid "int value on float result" bad

let test_arith_binary_types () =
  in_block (fun b ->
      let x = D.Arith.constant_f b 1.0 in
      let i = D.Arith.constant_i b 1 in
      let bad =
        Ir.Op.create ~name:"arith.addf" ~operands:[ x; i ] ~result_tys:[ f64 ] ()
      in
      expect_invalid "mixed operand types" bad;
      let good = Ir.Op.create ~name:"arith.addf" ~operands:[ x; x ] ~result_tys:[ f64 ] () in
      expect_valid "matching types" good)

let test_arith_cmp_select () =
  in_block (fun b ->
      let x = D.Arith.constant_f b 1.0 and y = D.Arith.constant_f b 2.0 in
      let c = D.Arith.cmpf b ~predicate:"olt" x y in
      expect_valid "cmpf" (Option.get (Ir.Value.defining_op c));
      let s = D.Arith.select b c x y in
      expect_valid "select" (Option.get (Ir.Value.defining_op s));
      let bad =
        Ir.Op.create ~name:"arith.select" ~operands:[ x; x; y ] ~result_tys:[ f64 ] ()
      in
      expect_invalid "select cond must be i1" bad)

let test_scf_for () =
  in_block (fun b ->
      let lb = D.Arith.constant_index b 0 in
      let ub = D.Arith.constant_index b 4 in
      let step = D.Arith.constant_index b 1 in
      let loop = D.Scf.for_ b ~lb ~ub ~step (fun _ _ -> ()) in
      expect_valid "for" loop;
      let f = D.Arith.constant_f b 0.0 in
      let bad =
        Ir.Op.create ~name:"scf.for" ~operands:[ f; ub; step ]
          ~regions:[ Builder.build_region ~arg_tys:[ Ty.Index ] (fun bb _ -> D.Scf.yield bb []) ]
          ()
      in
      expect_invalid "non-index lb" bad)

let test_scf_for_iter () =
  in_block (fun b ->
      let lb = D.Arith.constant_index b 0 in
      let ub = D.Arith.constant_index b 4 in
      let step = D.Arith.constant_index b 1 in
      let init = D.Arith.constant_f b 0.0 in
      let loop =
        D.Scf.for_iter b ~lb ~ub ~step ~init:[ init ] (fun bb _ iters ->
            match iters with
            | [ acc ] -> [ D.Arith.addf bb acc acc ]
            | _ -> assert false)
      in
      expect_valid "for with iter args" loop;
      Alcotest.(check int) "one result" 1 (Ir.Op.num_results loop))

let test_memref_rank_checks () =
  in_block (fun b ->
      let mr = D.Memref.alloc b ~shape:[ 4; 4 ] ~elem:f64 in
      let i = D.Arith.constant_index b 0 in
      let v = D.Memref.load b mr [ i; i ] in
      expect_valid "2d load" (Option.get (Ir.Value.defining_op v));
      let bad =
        Ir.Op.create ~name:"memref.load" ~operands:[ mr; i ] ~result_tys:[ f64 ] ()
      in
      expect_invalid "rank mismatch" bad)

let test_stencil_access () =
  in_block (fun b ->
      let field =
        Ir.Block.add_arg (Builder.current_block b)
          (Ty.Field (Ty.make_bounds ~lb:[ -1; -1 ] ~ub:[ 5; 5 ], f64))
      in
      let t = D.Stencil.load b field in
      (* unbounded temp: any offset rank accepted until inference *)
      let a = D.Stencil.access b t ~offset:[ 1; -1 ] in
      expect_valid "access" (Option.get (Ir.Value.defining_op a));
      (* bounded temp rejects wrong-rank offsets *)
      t.Ir.v_ty <- Ty.Temp (Some (Ty.make_bounds ~lb:[ 0; 0 ] ~ub:[ 4; 4 ]), f64);
      let bad =
        Ir.Op.create ~name:"stencil.access" ~operands:[ t ] ~result_tys:[ f64 ]
          ~attrs:[ ("offset", Attr.Ints [ 1 ]) ]
          ()
      in
      expect_invalid "offset rank" bad)

let test_stencil_apply_shape () =
  in_block (fun b ->
      let field =
        Ir.Block.add_arg (Builder.current_block b)
          (Ty.Field (Ty.make_bounds ~lb:[ -1 ] ~ub:[ 5 ], f64))
      in
      let t = D.Stencil.load b field in
      let apply =
        D.Stencil.apply b ~operands:[ t ] ~result_elems:[ f64 ] (fun bb args ->
            [ D.Stencil.access bb (List.hd args) ~offset:[ 0 ] ])
      in
      expect_valid "apply" apply;
      (* region arg type must mirror operand *)
      (Ir.Block.arg (D.Stencil.apply_block apply) 0).Ir.v_ty <- f64;
      expect_invalid "region arg mismatch" apply)

let test_stencil_external_and_cast () =
  in_block (fun b ->
      let blk = Builder.current_block b in
      let bounds = Ty.make_bounds ~lb:[ -1 ] ~ub:[ 5 ] in
      let mr = Ir.Block.add_arg blk (Ty.Memref ([ 6 ], f64)) in
      let el =
        Builder.insert_op1 b ~name:"stencil.external_load" ~operands:[ mr ]
          ~result_ty:(Ty.Field (bounds, f64)) ()
      in
      expect_valid "external_load" (Option.get (Ir.Value.defining_op el));
      let wider = Ty.make_bounds ~lb:[ -2 ] ~ub:[ 6 ] in
      let cast =
        Builder.insert_op1 b ~name:"stencil.cast" ~operands:[ el ]
          ~result_ty:(Ty.Field (wider, f64)) ()
      in
      expect_valid "cast" (Option.get (Ir.Value.defining_op cast));
      let es =
        Ir.Op.create ~name:"stencil.external_store" ~operands:[ el; mr ] ()
      in
      expect_valid "external_store" es;
      let bad =
        Ir.Op.create ~name:"stencil.external_load" ~operands:[ mr ]
          ~result_tys:[ Ty.Field (bounds, Ty.F32) ]
          ()
      in
      expect_invalid "element mismatch" bad)

let test_stencil_dyn_access () =
  in_block (fun b ->
      let blk = Builder.current_block b in
      let field =
        Ir.Block.add_arg blk (Ty.Field (Ty.make_bounds ~lb:[ 0 ] ~ub:[ 8 ], f64))
      in
      let t = D.Stencil.load b field in
      let i = D.Arith.constant_index b 2 in
      let v = D.Stencil.dyn_access b t ~indices:[ i ] in
      expect_valid "dyn_access" (Option.get (Ir.Value.defining_op v));
      let fconst = D.Arith.constant_f b 1.0 in
      let bad =
        Ir.Op.create ~name:"stencil.dyn_access" ~operands:[ t; fconst ]
          ~result_tys:[ f64 ] ()
      in
      expect_invalid "non-index index" bad)

let test_hls_streams () =
  in_block (fun b ->
      let s = D.Hls.create_stream b ~elem:f64 () in
      let sop = Option.get (Ir.Value.defining_op s) in
      expect_valid "create_stream" sop;
      Alcotest.(check int) "default depth" D.Hls.default_stream_depth
        (D.Hls.stream_depth sop);
      let v = D.Hls.read b s in
      expect_valid "read" (Option.get (Ir.Value.defining_op v));
      D.Hls.write b v s;
      let i = D.Arith.constant_i b 1 in
      let bad = Ir.Op.create ~name:"hls.write" ~operands:[ i; s ] () in
      expect_invalid "write type mismatch" bad;
      let e = D.Hls.empty b s in
      expect_valid "empty" (Option.get (Ir.Value.defining_op e)))

let test_hls_markers () =
  in_block (fun b ->
      D.Hls.pipeline b ~ii:1;
      D.Hls.unroll b ~factor:0;
      let mr = D.Memref.alloca b ~shape:[ 8 ] ~elem:f64 in
      D.Hls.array_partition b ~kind:"cyclic" ~factor:2 mr;
      List.iter (expect_valid "marker") (Ir.Block.ops (Builder.current_block b)));
  let bad = Ir.Op.create ~name:"hls.pipeline" ~attrs:[ ("ii", Attr.Int 0) ] () in
  expect_invalid "ii >= 1" bad;
  let bad2 =
    Ir.Op.create ~name:"hls.array_partition" ~attrs:[ ("kind", Attr.Str "weird") ] ()
  in
  expect_invalid "partition kind" bad2

let test_hls_dataflow_interface () =
  in_block (fun b ->
      let df = D.Hls.dataflow b ~stage:"s" (fun _ -> ()) in
      expect_valid "dataflow" df;
      Alcotest.(check string) "stage attr" "s" (D.Hls.dataflow_stage df);
      let arg =
        Ir.Block.add_arg (Builder.current_block b) (Ty.Ptr (Ty.Struct [ f64 ]))
      in
      D.Hls.interface b ~mode:"m_axi" ~bundle:"gmem0" arg;
      match List.rev (Ir.Block.ops (Builder.current_block b)) with
      | iface :: _ -> expect_valid "interface" iface
      | [] -> Alcotest.fail "no interface op")

let test_whole_module_verifier () =
  (* terminator not at end *)
  let m = Ir.Module_.create () in
  let blk = Ir.Block.create ~arg_tys:[ f64 ] () in
  let region = Ir.Region.create ~blocks:[ blk ] () in
  let func =
    Ir.Op.create ~name:"func.func"
      ~attrs:
        [
          ("sym_name", Attr.Str "f");
          ("function_type", Attr.Ty (Ty.Func ([ f64 ], [])));
        ]
      ~regions:[ region ] ()
  in
  Ir.Block.append (Ir.Module_.body m) func;
  let b = Builder.at_end blk in
  D.Func.return_ b [];
  ignore (D.Arith.constant_f b 3.0);
  (match Verifier.verify m with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "terminator mid-block must fail")

let () =
  Alcotest.run "dialects"
    [
      ( "registry",
        [
          Alcotest.test_case "registration" `Quick test_registry;
          Alcotest.test_case "traits" `Quick test_traits;
        ] );
      ( "arith",
        [
          Alcotest.test_case "constant" `Quick test_arith_constant;
          Alcotest.test_case "binary types" `Quick test_arith_binary_types;
          Alcotest.test_case "cmp/select" `Quick test_arith_cmp_select;
        ] );
      ( "scf",
        [
          Alcotest.test_case "for" `Quick test_scf_for;
          Alcotest.test_case "for with iter args" `Quick test_scf_for_iter;
        ] );
      ("memref", [ Alcotest.test_case "rank checks" `Quick test_memref_rank_checks ]);
      ( "stencil",
        [
          Alcotest.test_case "access" `Quick test_stencil_access;
          Alcotest.test_case "apply shape" `Quick test_stencil_apply_shape;
          Alcotest.test_case "external load/store/cast" `Quick
            test_stencil_external_and_cast;
          Alcotest.test_case "dyn_access" `Quick test_stencil_dyn_access;
        ] );
      ( "hls",
        [
          Alcotest.test_case "streams" `Quick test_hls_streams;
          Alcotest.test_case "markers" `Quick test_hls_markers;
          Alcotest.test_case "dataflow + interface" `Quick test_hls_dataflow_interface;
        ] );
      ( "verifier",
        [ Alcotest.test_case "terminator placement" `Quick test_whole_module_verifier ]
      );
    ]
