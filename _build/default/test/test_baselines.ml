(* Baseline-flow tests: each model must reproduce the structural facts
   the paper reports for that tool. *)

let () = Shmls_dialects.Register.all ()

module B = Shmls_baselines
module PW = Shmls_kernels.Pw_advection
module TA = Shmls_kernels.Tracer_advection

let success what = function
  | B.Flow.Success s -> s
  | B.Flow.Failure f -> Alcotest.failf "%s: unexpected failure: %s" what f.f_reason

let failure what = function
  | B.Flow.Failure { f_reason; _ } -> f_reason
  | B.Flow.Success _ -> Alcotest.failf "%s: expected a failure" what

(* -- kernel stats --------------------------------------------------------- *)

let test_stats () =
  let s = B.Flow.stats_of_kernel PW.kernel in
  Alcotest.(check int) "pw fields" 6 s.ks_fields;
  Alcotest.(check int) "pw smalls" 4 s.ks_smalls;
  Alcotest.(check int) "pw stencils" 3 s.ks_stencils;
  Alcotest.(check int) "pw components" 3 s.ks_components;
  let t = B.Flow.stats_of_kernel TA.kernel in
  Alcotest.(check int) "tracer fields" 17 t.ks_fields;
  Alcotest.(check int) "tracer stencils" 24 t.ks_stencils;
  Alcotest.(check int) "tracer intermediates" 18 t.ks_intermediates;
  Alcotest.(check int) "tracer components" 2 t.ks_components;
  Alcotest.(check int) "tracer critical refs" 20
    (List.fold_left max 0 t.ks_refs_per_stencil)

(* -- DaCe ------------------------------------------------------------------ *)

let test_dace_sdfg_structure () =
  let sdfg = B.Dace.sdfg_of_kernel PW.kernel ~grid:PW.grid_small in
  Alcotest.(check int) "pw: one state per component" 3 (B.Dace.n_states sdfg);
  Alcotest.(check int) "pw tasklets" 3 (B.Dace.sdfg_tasklets sdfg);
  let sdfg_t = B.Dace.sdfg_of_kernel TA.kernel ~grid:TA.grid_small in
  Alcotest.(check int) "tracer: two chains" 2 (B.Dace.n_states sdfg_t);
  Alcotest.(check int) "tracer tasklets" 24 (B.Dace.sdfg_tasklets sdfg_t);
  Alcotest.(check bool) "flops accounted" true (B.Dace.sdfg_flops sdfg_t > 100)

let test_dace_ii_and_serialisation () =
  let s = success "dace pw" (B.Dace.evaluate PW.kernel ~grid:PW.grid_8m) in
  Alcotest.(check int) "II = 9 (measured in the paper)" 9 s.s_est.e_ii;
  Alcotest.(check int) "serialises the 3 components" 3 s.s_est.e_serial;
  Alcotest.(check int) "1 CU (no replication support)" 1 s.s_est.e_cu;
  let t = success "dace tracer" (B.Dace.evaluate TA.kernel ~grid:TA.grid_8m) in
  Alcotest.(check int) "tracer serial = 2 chains" 2 t.s_est.e_serial

let test_dace_fails_at_134m () =
  let reason = failure "dace 134M" (B.Dace.evaluate PW.kernel ~grid:PW.grid_134m) in
  Alcotest.(check bool) "compile failure mentions banks" true
    (String.length reason > 0);
  (* 8M and 32M build fine *)
  ignore (success "8M" (B.Dace.evaluate PW.kernel ~grid:PW.grid_8m));
  ignore (success "32M" (B.Dace.evaluate PW.kernel ~grid:PW.grid_32m))

(* -- Vitis HLS -------------------------------------------------------------- *)

let test_vitis_ii_matches_paper () =
  let t = success "vitis tracer" (B.Vitis.evaluate TA.kernel ~grid:TA.grid_8m) in
  Alcotest.(check int) "tracer critical-path II = 163" 163 t.s_est.e_ii

let test_vitis_cost_model () =
  Alcotest.(check int) "II formula" 163 (B.Vitis.loop_ii ~refs:20);
  let stats = B.Flow.stats_of_kernel PW.kernel in
  Alcotest.(check bool) "pw loops serialised" true
    (B.Vitis.cycles_per_point stats > B.Vitis.critical_ii stats)

(* -- SODA-opt ---------------------------------------------------------------- *)

let test_soda_ii_matches_paper () =
  let t = success "soda tracer" (B.Soda.evaluate TA.kernel ~grid:TA.grid_8m) in
  Alcotest.(check int) "tracer II = 164" 164 t.s_est.e_ii

let test_soda_dse_rejects_full_unroll () =
  let s = success "soda pw" (B.Soda.evaluate PW.kernel ~grid:PW.grid_8m) in
  Alcotest.(check bool) "note mentions rejection" true
    (let n = s.s_note in
     String.length n > 0
     &&
     let rec has i =
       i + 8 <= String.length n && (String.sub n i 8 = "rejected" || has (i + 1))
     in
     has 0)

let test_soda_slowest_on_pw () =
  let soda = success "soda" (B.Soda.evaluate PW.kernel ~grid:PW.grid_8m) in
  let vitis = success "vitis" (B.Vitis.evaluate PW.kernel ~grid:PW.grid_8m) in
  Alcotest.(check bool) "soda below vitis on PW (paper figure 4)" true
    (soda.s_est.e_mpts < vitis.s_est.e_mpts)

let test_soda_comparable_on_tracer () =
  let soda = success "soda" (B.Soda.evaluate TA.kernel ~grid:TA.grid_8m) in
  let vitis = success "vitis" (B.Vitis.evaluate TA.kernel ~grid:TA.grid_8m) in
  let ratio = soda.s_est.e_mpts /. vitis.s_est.e_mpts in
  Alcotest.(check bool) "within 5% (paper: II 164 vs 163)" true
    (ratio > 0.95 && ratio < 1.05)

(* -- StencilFlow -------------------------------------------------------------- *)

let test_stencilflow_pw_deadlocks () =
  let reason = failure "sf pw" (B.Stencilflow.evaluate PW.kernel ~grid:PW.grid_8m) in
  Alcotest.(check bool) "deadlock reported" true
    (let n = reason in
     let rec has i =
       i + 9 <= String.length n && (String.sub n i 9 = "deadlocks" || has (i + 1))
     in
     has 0)

let test_stencilflow_tracer_not_expressible () =
  Alcotest.(check bool) "tracer has subselections" true
    (B.Stencilflow.has_subselection TA.kernel);
  Alcotest.(check bool) "pw does not" false (B.Stencilflow.has_subselection PW.kernel);
  let reason = failure "sf tracer" (B.Stencilflow.evaluate TA.kernel ~grid:TA.grid_8m) in
  Alcotest.(check bool) "inexpressibility reported" true
    (String.length reason > 0)

let test_stencilflow_simple_kernel_completes () =
  (* a skew-free kernel without coefficient arrays streams fine at II=1,
     matching the II=1 the paper credits the tool with *)
  match B.Stencilflow.evaluate Shmls_kernels.Didactic.heat_3d ~grid:[ 64; 32; 16 ] with
  | B.Flow.Success s -> Alcotest.(check int) "II=1" 1 s.s_est.e_ii
  | B.Flow.Failure f -> Alcotest.failf "unexpected failure: %s" f.f_reason

(* -- cross-flow ordering (the paper's figures) -------------------------------- *)

let mpts flow = function
  | B.Flow.Success s -> s.s_est.e_mpts
  | B.Flow.Failure _ -> Alcotest.failf "%s failed unexpectedly" flow

let test_figure4_ordering_pw () =
  let outcomes = Shmls.evaluate_all PW.kernel ~grid:PW.grid_8m in
  match outcomes with
  | [ hmls; dace; soda; vitis; _sf ] ->
    let h = mpts "hmls" hmls and d = mpts "dace" dace in
    let s = mpts "soda" soda and v = mpts "vitis" vitis in
    Alcotest.(check bool) "HMLS > DaCe > Vitis > SODA" true
      (h > d && d > v && v > s);
    let ratio = h /. d in
    Alcotest.(check bool) "90-110x over DaCe (paper: 90-100x, est. 108x)" true
      (ratio > 85.0 && ratio < 115.0)
  | _ -> Alcotest.fail "expected five outcomes"

let test_figure4_ordering_tracer () =
  let outcomes = Shmls.evaluate_all TA.kernel ~grid:TA.grid_8m in
  match outcomes with
  | [ hmls; dace; soda; vitis; sf ] ->
    let h = mpts "hmls" hmls and d = mpts "dace" dace in
    let s = mpts "soda" soda and v = mpts "vitis" vitis in
    Alcotest.(check bool) "HMLS > DaCe > others" true (h > d && d > v && d > s);
    let ratio = h /. d in
    Alcotest.(check bool) "14-21x over DaCe (paper)" true
      (ratio > 13.0 && ratio < 22.0);
    (match sf with
    | B.Flow.Failure _ -> ()
    | B.Flow.Success _ -> Alcotest.fail "stencilflow must fail on tracer")
  | _ -> Alcotest.fail "expected five outcomes"

let test_energy_ratios () =
  let energy = function
    | B.Flow.Success s -> s.s_power.p_energy_j
    | B.Flow.Failure _ -> Alcotest.fail "flow failed"
  in
  (match Shmls.evaluate_all PW.kernel ~grid:PW.grid_8m with
  | hmls :: dace :: _ ->
    let r = energy dace /. energy hmls in
    Alcotest.(check bool) "PW energy ratio in the paper's 85-92x band" true
      (r > 70.0 && r < 110.0)
  | _ -> Alcotest.fail "outcomes");
  match Shmls.evaluate_all TA.kernel ~grid:TA.grid_8m with
  | hmls :: dace :: _ ->
    let r = energy dace /. energy hmls in
    Alcotest.(check bool) "tracer energy ratio in the paper's 14-22x band" true
      (r > 11.0 && r < 26.0)
  | _ -> Alcotest.fail "outcomes"

let test_hmls_reports_overflow () =
  (* an absurd CU count must surface as a Failure, not a silent estimate *)
  let c = Shmls.compile Shmls_kernels.Pw_advection.kernel ~grid:[ 16; 8; 6 ] in
  match Shmls.evaluate_hmls ~cu:5000 c with
  | B.Flow.Failure { f_flow = "Stencil-HMLS"; _ } -> ()
  | B.Flow.Failure _ -> Alcotest.fail "wrong flow name"
  | B.Flow.Success _ -> Alcotest.fail "oversized deployment must fail"

let test_power_marginally_greater () =
  let power = function
    | B.Flow.Success s -> s.s_power.p_total_w
    | B.Flow.Failure _ -> Alcotest.fail "flow failed"
  in
  match Shmls.evaluate_all PW.kernel ~grid:PW.grid_8m with
  | hmls :: dace :: soda :: vitis :: _ ->
    let h = power hmls in
    List.iter
      (fun p ->
        Alcotest.(check bool) "HMLS draws more" true (h > p);
        Alcotest.(check bool) "but marginally (< 2x)" true (h < 2.0 *. p))
      [ power dace; power soda; power vitis ]
  | _ -> Alcotest.fail "outcomes"

let () =
  Alcotest.run "baselines"
    [
      ("stats", [ Alcotest.test_case "kernel statistics" `Quick test_stats ]);
      ( "dace",
        [
          Alcotest.test_case "SDFG structure" `Quick test_dace_sdfg_structure;
          Alcotest.test_case "II=9, serialised, 1 CU" `Quick
            test_dace_ii_and_serialisation;
          Alcotest.test_case "fails at 134M" `Quick test_dace_fails_at_134m;
        ] );
      ( "vitis",
        [
          Alcotest.test_case "tracer II=163" `Quick test_vitis_ii_matches_paper;
          Alcotest.test_case "cost model" `Quick test_vitis_cost_model;
        ] );
      ( "soda",
        [
          Alcotest.test_case "tracer II=164" `Quick test_soda_ii_matches_paper;
          Alcotest.test_case "DSE rejects full unroll" `Quick
            test_soda_dse_rejects_full_unroll;
          Alcotest.test_case "slowest on PW" `Quick test_soda_slowest_on_pw;
          Alcotest.test_case "comparable to Vitis on tracer" `Quick
            test_soda_comparable_on_tracer;
        ] );
      ( "stencilflow",
        [
          Alcotest.test_case "PW deadlocks" `Quick test_stencilflow_pw_deadlocks;
          Alcotest.test_case "tracer not expressible" `Quick
            test_stencilflow_tracer_not_expressible;
          Alcotest.test_case "simple kernels complete at II=1" `Quick
            test_stencilflow_simple_kernel_completes;
        ] );
      ( "figures",
        [
          Alcotest.test_case "figure 4 ordering (PW)" `Quick test_figure4_ordering_pw;
          Alcotest.test_case "figure 4 ordering (tracer)" `Quick
            test_figure4_ordering_tracer;
          Alcotest.test_case "figures 5-6 energy ratios" `Quick test_energy_ratios;
          Alcotest.test_case "power marginally greater" `Quick
            test_power_marginally_greater;
          Alcotest.test_case "HMLS overflow reported" `Quick
            test_hmls_reports_overflow;
        ] );
    ]
