(* Robustness and failure-injection tests: malformed inputs raise typed
   errors (never crash), mis-wired designs are detected, and the models
   behave monotonically. *)

let () = Shmls_dialects.Register.all ()

module H = Test_common.Helpers
module F = Shmls_fpga

(* -- psy parser never escapes Parse_error ---------------------------------- *)

let gen_garbage =
  QCheck2.Gen.(
    let token =
      oneofl
        [
          "kernel"; "rank"; "input"; "output"; "small"; "param"; "end"; "=";
          "+"; "-"; "*"; "/"; "("; ")"; "["; "]"; ","; "a"; "b1"; "3"; "0.5";
          "min"; "abs"; "!"; "axis";
        ]
    in
    let* n = int_range 0 40 in
    let* toks = list_repeat n token in
    let* newlines = list_repeat n (oneofl [ " "; "\n" ]) in
    return (String.concat "" (List.concat (List.map2 (fun t s -> [ t; s ]) toks newlines))))

let qcheck_psy_parser_total =
  H.qtest ~count:300 "psy parser: Parse_error or kernel, never a crash"
    gen_garbage (fun src ->
      match Shmls_frontend.Psy_parser.parse src with
      | _ -> true
      | exception Shmls_frontend.Psy_parser.Parse_error _ -> true)

(* -- IR parser never escapes Err.Error -------------------------------------- *)

let gen_ir_garbage =
  QCheck2.Gen.(
    let token =
      oneofl
        [
          "\"builtin.module\""; "\"arith.addf\""; "("; ")"; "{"; "}"; "%0";
          "%1"; "="; ":"; "->"; "f64"; "index"; ","; "<["; "]>"; "1"; "-2";
          "0.5"; "@f"; "^bb0"; "memref"; "x";
        ]
    in
    let* n = int_range 0 30 in
    let* toks = list_repeat n token in
    return (String.concat " " toks))

let qcheck_ir_parser_total =
  H.qtest ~count:300 "IR parser: Err.Error or module, never a crash"
    gen_ir_garbage (fun src ->
      match Shmls_ir.Parser.parse_module src with
      | _ -> true
      | exception Shmls_support.Err.Error _ -> true)

(* -- functional simulator detects mis-wired designs -------------------------- *)

let sabotaged_design () =
  let c = Shmls.compile H.avg_1d ~grid:[ 12 ] in
  let d = c.c_design in
  (* drop the write stage: load/shift/compute still fill streams which
     are then never drained *)
  {
    d with
    Shmls.Design.d_stages =
      List.filter
        (fun s -> match s with Shmls.Design.Write _ -> false | _ -> true)
        d.d_stages;
  }

let test_functional_detects_undrained () =
  let d = sabotaged_design () in
  let st = Shmls.Interp.alloc_state (Shmls.compile H.avg_1d ~grid:[ 12 ]).c_lowered in
  let args =
    List.map (fun (_, g) -> F.Functional.Ptr (g.Shmls.Grid.data, 0)) st.fields
    |> Array.of_list
  in
  match F.Functional.run d ~args with
  | exception Shmls_support.Err.Error _ -> ()
  | () -> Alcotest.fail "undrained streams must be reported"

let test_functional_detects_starved_read () =
  let c = Shmls.compile H.avg_1d ~grid:[ 12 ] in
  let d = c.c_design in
  (* drop the load stage: the shift buffer reads an empty stream *)
  let d =
    {
      d with
      Shmls.Design.d_stages =
        List.filter
          (fun s -> match s with Shmls.Design.Load _ -> false | _ -> true)
          d.d_stages;
    }
  in
  let st = Shmls.Interp.alloc_state c.c_lowered in
  let args =
    List.map (fun (_, g) -> F.Functional.Ptr (g.Shmls.Grid.data, 0)) st.fields
    |> Array.of_list
  in
  match F.Functional.run d ~args with
  | exception Shmls_support.Err.Error _ -> ()
  | () -> Alcotest.fail "reads from an unfed stream must be reported"

let test_cycle_sim_rejects_writeless_design () =
  let d = sabotaged_design () in
  (* a design with no write stage has no completion criterion: rejected *)
  match F.Cycle_sim.run d with
  | exception Shmls_support.Err.Error _ -> ()
  | _ -> Alcotest.fail "write-less design must be rejected"

(* -- model monotonicity -------------------------------------------------- *)

let test_estimate_monotone_in_ii () =
  let mk ii =
    F.Perf_model.estimate ~total_padded:1_000_000 ~interior:1_000_000 ~fill:0.0
      ~ii ~serial:1 ~cu:1 ~ports:4 ~bytes_per_point:32
      ~clock_hz:F.U280.clock_hz ()
  in
  let prev = ref (mk 1).e_mpts in
  List.iter
    (fun ii ->
      let m = (mk ii).e_mpts in
      Alcotest.(check bool)
        (Printf.sprintf "II %d slower than previous" ii)
        true (m < !prev);
      prev := m)
    [ 2; 4; 9; 50; 163 ]

let qcheck_more_cus_never_slower =
  H.qtest ~count:30 "more CUs never slower (analytic)"
    QCheck2.Gen.(pair (int_range 1 8) (int_range 1 8))
    (fun (cu1, cu2) ->
      let c = Shmls.compile Shmls_kernels.Didactic.heat_3d ~grid:[ 16; 8; 8 ] in
      let est cu = (F.Perf_model.estimate_design ~cu c.c_design).e_mpts in
      if cu1 <= cu2 then est cu1 <= est cu2 +. 1e-9 else est cu2 <= est cu1 +. 1e-9)

let test_depth_balance_idempotent () =
  let l = Shmls_frontend.Lower.lower H.chain_3d ~grid:[ 8; 6; 6 ] in
  Shmls_transforms.Shape_inference.run_on_module l.l_module;
  let m_hls, _ = Shmls_transforms.Stencil_to_hls.run l.l_module in
  let d = List.hd (F.Extract.extract_module m_hls) in
  let first = F.Depth_balance.balance d in
  Alcotest.(check bool) "first pass changes" true (first > 0);
  let d2 = F.Extract.extract d.d_func in
  Alcotest.(check int) "second pass is a no-op" 0 (F.Depth_balance.balance d2)

(* -- power model sanity --------------------------------------------------- *)

let test_power_bounds () =
  (* even a fully-lit U280 should stay within a plausible card envelope *)
  let full =
    {
      Shmls.Resources.r_luts = F.U280.luts;
      r_ffs = F.U280.ffs;
      r_bram = F.U280.bram36;
      r_uram = F.U280.uram;
      r_dsps = F.U280.dsps;
    }
  in
  let r =
    Shmls.Power.report ~usage:full ~activity:1.0 ~bytes_per_second:4.6e11
      ~seconds:1.0
  in
  Alcotest.(check bool) "above static" true (r.p_total_w > F.U280.static_power_w);
  Alcotest.(check bool) "below 225 W card limit" true (r.p_total_w < 225.0)

let () =
  Alcotest.run "robustness"
    [
      ( "total-parsers",
        [ qcheck_psy_parser_total; qcheck_ir_parser_total ] );
      ( "failure-injection",
        [
          Alcotest.test_case "functional: undrained streams" `Quick
            test_functional_detects_undrained;
          Alcotest.test_case "functional: starved reads" `Quick
            test_functional_detects_starved_read;
          Alcotest.test_case "cycle sim rejects write-less designs" `Quick
            test_cycle_sim_rejects_writeless_design;
        ] );
      ( "monotonicity",
        [
          Alcotest.test_case "mpts falls with II" `Quick test_estimate_monotone_in_ii;
          qcheck_more_cus_never_slower;
          Alcotest.test_case "depth balance idempotent" `Quick
            test_depth_balance_idempotent;
        ] );
      ("power", [ Alcotest.test_case "envelope bounds" `Quick test_power_bounds ]);
    ]
