(* Tests for the alternative backend (CIRCT lowering, the paper's
   further-work item 1) and the host runtime (the OpenCL host-code
   stand-in). *)

let () = Shmls_dialects.Register.all ()

module H = Test_common.Helpers
module Circt = Shmls_circt.Circt
module Host = Shmls_host.Host

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* -- CIRCT ---------------------------------------------------------------- *)

let test_circt_structure () =
  let c = Shmls.compile Shmls_kernels.Pw_advection.kernel ~grid:[ 12; 8; 6 ] in
  let circuit = Circt.build c.c_design in
  let externs, instances, buffers = Circt.stats circuit in
  Alcotest.(check int) "one instance per stage" (List.length c.c_design.d_stages)
    instances;
  Alcotest.(check bool) "extern stage library" true (externs >= 4);
  Alcotest.(check int) "one buffer per stream"
    (List.length c.c_design.d_streams)
    buffers

let test_circt_emission () =
  let c = Shmls.compile Shmls_kernels.Pw_advection.kernel ~grid:[ 12; 8; 6 ] in
  let text = Shmls.emit_circt_text c in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains ~needle text))
    [
      "hw.module @pw_advection";
      "hw.module.extern @load_data";
      "hw.module.extern @shift_buffer_nb27";
      "hw.module.extern @write_data";
      "!esi.channel<f64>";
      "!esi.channel<!hw.array<27xf64>>";
      "!esi.channel<i512>";
      "esi.buffer";
      "hw.instance \"compute_t0\"";
      "hw.output";
    ]

let test_circt_deterministic () =
  let c = Shmls.compile H.chain_3d ~grid:[ 8; 6; 6 ] in
  Alcotest.(check string) "same text twice" (Shmls.emit_circt_text c)
    (Shmls.emit_circt_text c)

let test_circt_all_kernels () =
  List.iter
    (fun ((k : Shmls.Ast.kernel), grid) ->
      let c = Shmls.compile k ~grid in
      let text = Shmls.emit_circt_text c in
      Alcotest.(check bool) (k.k_name ^ " emits") true (String.length text > 100);
      Alcotest.(check bool)
        (k.k_name ^ " has its module")
        true
        (contains ~needle:("hw.module @" ^ k.k_name) text))
    H.all_test_kernels

let test_circt_depths_survive () =
  (* the balanced FIFO depths must surface in the esi.buffer stages *)
  let c = Shmls.compile H.chain_3d ~grid:[ 8; 6; 6 ] in
  let deepest =
    List.fold_left
      (fun acc (s : Shmls.Design.stream) -> max acc s.st_depth)
      0 c.c_design.d_streams
  in
  let text = Shmls.emit_circt_text c in
  Alcotest.(check bool) "deep buffer in the netlist" true
    (contains ~needle:(Printf.sprintf "{depth = %d}" deepest) text)

(* -- host runtime ----------------------------------------------------------- *)

let test_host_run_matches_interpreter () =
  let k = H.chain_3d in
  let grid = [ 8; 6; 6 ] in
  let c = Shmls.compile k ~grid in
  let dev = Host.create_device () in
  let prog = Host.build_program dev c in
  let event, fields, _smalls =
    Host.run_kernel prog ~params:[ ("alpha", 0.1) ]
  in
  Alcotest.(check string) "event kernel" "chain_3d" event.ev_kernel;
  Alcotest.(check bool) "nonzero duration" true (Host.duration_s event > 0.0);
  (* reference: interpreter with the same seed and parameter values *)
  let ref_state = Shmls.Interp.alloc_state ~seed:7 c.c_lowered in
  let ref_state =
    { ref_state with Shmls.Interp.params = [ ("alpha", 0.1) ] }
  in
  ignore (Shmls.Interp.run_func c.c_lowered.l_func ~args:(Shmls.Interp.state_args ref_state));
  let interior = Shmls.Ty.make_bounds ~lb:[ 0; 0; 0 ] ~ub:grid in
  List.iter
    (fun (fd : Shmls.Ast.field_decl) ->
      if fd.fd_role = Shmls.Ast.Output then begin
        let dev_buf = List.assoc fd.fd_name fields in
        let ref_grid = List.assoc fd.fd_name ref_state.fields in
        let d =
          Shmls.Grid.max_abs_diff_on interior ref_grid dev_buf.Host.buf_grid
        in
        if d <> 0.0 then
          Alcotest.failf "host run of %s differs by %g" fd.fd_name d
      end)
    k.k_fields

let test_host_buffer_transfers () =
  let c = Shmls.compile H.avg_1d ~grid:[ 16 ] in
  let dev = Host.create_device () in
  let prog = Host.build_program dev c in
  let buf = Host.alloc_field_buffer prog in
  let src = Shmls.Grid.create buf.Host.buf_grid.bounds in
  Shmls.Grid.init_hash ~seed:5 src;
  Host.write_buffer buf src;
  let back = Shmls.Grid.create buf.Host.buf_grid.bounds in
  Host.read_buffer buf back;
  Alcotest.(check (float 0.0)) "round trip" 0.0 (Shmls.Grid.max_abs_diff src back)

let test_host_hbm_capacity () =
  (* the device tracks allocations against the 8 GB of HBM; pretend most
     of it is used and check the next allocation is refused before any
     backing store is created *)
  let c = Shmls.compile H.avg_1d ~grid:[ 16 ] in
  let dev = Host.create_device () in
  let prog = Host.build_program dev c in
  dev.Host.allocated_bytes <- Shmls.U280.hbm_bytes - 64;
  match Host.alloc_field_buffer prog with
  | exception Shmls_support.Err.Error _ -> ()
  | _ -> Alcotest.fail "HBM capacity not enforced"

let test_host_event_consistency () =
  (* the event's profiled time must equal the analytic model's *)
  let c = Shmls.compile Shmls_kernels.Didactic.heat_3d ~grid:[ 12; 10; 8 ] in
  let dev = Host.create_device () in
  let prog = Host.build_program dev c in
  let event, _, _ = Host.run_kernel prog ~params:[ ("alpha", 0.05) ] in
  let est = Shmls.Perf_model.estimate_design c.c_design in
  Alcotest.(check (float 1e-12)) "profiled = modelled" est.e_seconds
    (Host.duration_s event);
  let mpts = Host.mpts_of_event prog event in
  Alcotest.(check (float 0.01)) "MPt/s consistent" est.e_mpts mpts

(* -- domain decomposition ---------------------------------------------- *)

let test_partition_bit_exact () =
  List.iter
    (fun slabs ->
      let d =
        Shmls_host.Partition.verify_against_reference
          Shmls_kernels.Didactic.heat_3d ~grid:[ 16; 8; 6 ] ~slabs
          ~params:[ ("alpha", 0.05) ] ()
      in
      if d <> 0.0 then Alcotest.failf "%d slabs: diff %g" slabs d)
    [ 1; 2; 3; 4 ]

let test_partition_pw_advection () =
  let d =
    Shmls_host.Partition.verify_against_reference Shmls_kernels.Pw_advection.kernel
      ~grid:[ 24; 10; 8 ] ~slabs:3
      ~params:[ ("tcx", 0.12); ("tcy", 0.09) ]
      ()
  in
  Alcotest.(check (float 0.0)) "pw partitioned" 0.0 d

let test_partition_scales () =
  (* big enough along dim 0 that compute dominates the fixed fill *)
  let k = Shmls_kernels.Didactic.heat_3d in
  let grid = [ 96; 8; 6 ] in
  let mpts slabs =
    let r = Shmls_host.Partition.run k ~grid ~slabs ~params:[ ("alpha", 0.05) ] () in
    Shmls_host.Partition.aggregate_mpts ~grid r
  in
  let m1 = mpts 1 and m4 = mpts 4 in
  Alcotest.(check bool) "4 devices faster" true (m4 > 2.0 *. m1)

let test_partition_rejects_oversplit () =
  match
    Shmls_host.Partition.run Shmls_kernels.Didactic.heat_3d ~grid:[ 4; 6; 6 ]
      ~slabs:8 ~params:[ ("alpha", 0.05) ] ()
  with
  | exception Shmls_support.Err.Error _ -> ()
  | _ -> Alcotest.fail "more slabs than rows must be rejected"

(* -- occupancy tracing ------------------------------------------------------ *)

let test_trace_capture () =
  let c = Shmls.compile H.chain_3d ~grid:[ 8; 6; 6 ] in
  let result, t = Shmls.Trace.capture ~every:8 c.c_design in
  Alcotest.(check bool) "completed" true (not result.deadlocked);
  Alcotest.(check bool) "samples collected" true (List.length t.tr_samples > 5);
  let csv = Shmls.Trace.to_csv t in
  Alcotest.(check bool) "csv header" true
    (String.length csv > 0 && String.sub csv 0 6 = "cycle,");
  Alcotest.(check int) "one line per sample + header"
    (List.length t.tr_samples + 1)
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)));
  let ascii = Shmls.Trace.to_ascii t c.c_design in
  Alcotest.(check int) "one row per stream"
    (List.length c.c_design.d_streams)
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' ascii)))

(* -- synthesis report ------------------------------------------------------ *)

let test_report_contents () =
  let c = Shmls.compile Shmls_kernels.Pw_advection.kernel ~grid:[ 16; 8; 6 ] in
  let text = Shmls.report_text c in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains ~needle text))
    [
      "Synthesis report: kernel 'pw_advection'";
      "initiation interval : 1";
      "load_data";
      "shift_buffer";
      "write_data";
      "Utilisation";
      "HBM[";
      "shared small-data";
    ]

let () =
  Alcotest.run "backends"
    [
      ( "circt",
        [
          Alcotest.test_case "structure" `Quick test_circt_structure;
          Alcotest.test_case "emission" `Quick test_circt_emission;
          Alcotest.test_case "deterministic" `Quick test_circt_deterministic;
          Alcotest.test_case "all kernels" `Quick test_circt_all_kernels;
          Alcotest.test_case "balanced depths survive" `Quick
            test_circt_depths_survive;
        ] );
      ( "partition",
        [
          Alcotest.test_case "bit-exact at 1-4 slabs" `Quick test_partition_bit_exact;
          Alcotest.test_case "PW advection partitioned" `Quick
            test_partition_pw_advection;
          Alcotest.test_case "aggregate throughput scales" `Quick
            test_partition_scales;
          Alcotest.test_case "rejects oversplitting" `Quick
            test_partition_rejects_oversplit;
        ] );
      ("report", [ Alcotest.test_case "contents" `Quick test_report_contents ]);
      ("trace", [ Alcotest.test_case "capture + export" `Quick test_trace_capture ]);
      ( "host",
        [
          Alcotest.test_case "run matches interpreter" `Quick
            test_host_run_matches_interpreter;
          Alcotest.test_case "buffer transfers" `Quick test_host_buffer_transfers;
          Alcotest.test_case "HBM capacity enforced" `Quick test_host_hbm_capacity;
          Alcotest.test_case "event = analytic model" `Quick
            test_host_event_consistency;
        ] );
    ]
