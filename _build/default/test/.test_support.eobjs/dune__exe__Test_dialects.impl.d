test/test_dialects.ml: Alcotest Attr Builder Dialect Ir List Option Shmls_dialects Shmls_ir Shmls_support Ty Verifier
