test/test_passes.ml: Alcotest Attr Cse Dce Fold Ir List Pass Rewriter Shmls_dialects Shmls_ir Shmls_support Test_common Ty
