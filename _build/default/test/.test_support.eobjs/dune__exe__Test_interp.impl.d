test/test_interp.ml: Alcotest Arith Func List Memref QCheck2 Scf Shmls_dialects Shmls_frontend Shmls_interp Shmls_ir Shmls_kernels Shmls_support Shmls_transforms Test_common
