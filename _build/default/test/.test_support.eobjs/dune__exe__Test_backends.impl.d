test/test_backends.ml: Alcotest List Printf Shmls Shmls_circt Shmls_dialects Shmls_host Shmls_kernels Shmls_support String Test_common
