test/test_support.ml: Alcotest Err Idgen List QCheck2 Shmls_support Stats String Table Test_common
