test/test_corpus.ml: Alcotest Array Filename List Shmls Shmls_dialects String Sys
