test/test_printer_parser.ml: Alcotest Attr Ir List Parser Printer QCheck2 Shmls_dialects Shmls_frontend Shmls_ir Shmls_support Shmls_transforms String Test_common Ty
