test/test_frontend.ml: Alcotest List QCheck2 Shmls Shmls_baselines Shmls_dialects Shmls_frontend Shmls_ir Shmls_kernels Shmls_support Test_common
