test/test_robustness.ml: Alcotest Array List Printf QCheck2 Shmls Shmls_dialects Shmls_fpga Shmls_frontend Shmls_ir Shmls_kernels Shmls_support Shmls_transforms String Test_common
