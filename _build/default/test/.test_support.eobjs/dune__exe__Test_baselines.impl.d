test/test_baselines.ml: Alcotest List Shmls Shmls_baselines Shmls_dialects Shmls_kernels String
