test/test_coverage.ml: Alcotest Filename Float List Shmls Shmls_dialects Shmls_fpga Shmls_frontend Shmls_host Shmls_interp Shmls_ir Shmls_kernels Shmls_llvmir Shmls_support String Sys Test_common
