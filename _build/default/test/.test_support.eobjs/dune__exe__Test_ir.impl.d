test/test_ir.ml: Alcotest Attr Builder Ir List Shmls_dialects Shmls_ir Shmls_support Ty
