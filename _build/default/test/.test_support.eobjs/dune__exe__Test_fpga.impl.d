test/test_fpga.ml: Alcotest Float Hashtbl List QCheck2 Shmls Shmls_dialects Shmls_fpga Shmls_frontend Shmls_kernels Shmls_transforms Test_common
