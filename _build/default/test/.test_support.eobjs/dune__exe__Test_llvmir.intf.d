test/test_llvmir.mli:
