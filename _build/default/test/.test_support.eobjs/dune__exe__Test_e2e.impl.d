test/test_e2e.ml: Alcotest Float List QCheck2 Shmls Shmls_dialects Shmls_frontend Shmls_kernels String Test_common
