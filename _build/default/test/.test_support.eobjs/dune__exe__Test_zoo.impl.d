test/test_zoo.ml: Alcotest List Shmls Shmls_dialects Shmls_kernels
