"builtin.module"() ({
  "func.func"() ({
  ^bb0(%0: !stencil.field<[-1,17] x f64>, %1: !stencil.field<[-1,17] x f64>):
    %2 = "stencil.load"(%0) : (!stencil.field<[-1,17] x f64>) -> (!stencil.temp<? x f64>)
    %3 = "stencil.apply"(%2) ({
    ^bb1(%4: !stencil.temp<? x f64>):
      %5 = "stencil.access"(%4) {offset = <[-1]>} : (!stencil.temp<? x f64>) -> (f64)
      %6 = "stencil.access"(%4) {offset = <[1]>} : (!stencil.temp<? x f64>) -> (f64)
      %7 = "arith.addf"(%5, %6) : (f64, f64) -> (f64)
      "stencil.return"(%7) : (f64) -> ()
    }) : (!stencil.temp<? x f64>) -> (!stencil.temp<? x f64>)
    "stencil.store"(%3, %1) {lb = <[0]>, ub = <[16]>} : (!stencil.temp<? x f64>, !stencil.field<[-1,17] x f64>) -> ()
    "func.return"() : () -> ()
  }) {function_type = (!stencil.field<[-1,17] x f64>, !stencil.field<[-1,17] x f64>) -> (), sym_name = "sum1d"} : () -> ()
}) : () -> ()
