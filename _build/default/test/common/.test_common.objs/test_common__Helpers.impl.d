test/common/helpers.ml: Alcotest Float List Printf QCheck2 QCheck_alcotest Shmls_dialects Shmls_frontend Shmls_ir Shmls_kernels Shmls_support Shmls_transforms
