(* The kernel zoo: the transformation must generalise beyond the paper's
   two kernels — bit-exact numerics and II~1 on every zoo member,
   including halo-2 (5-wide neighbourhood) and chained shapes. *)

let () = Shmls_dialects.Register.all ()

let test_zoo_bit_exact () =
  List.iter
    (fun ((k : Shmls.Ast.kernel), grid) ->
      let c = Shmls.compile k ~grid in
      let v = Shmls.verify c in
      if v.v_max_diff <> 0.0 then
        Alcotest.failf "%s: diff %g" k.k_name v.v_max_diff)
    Shmls_kernels.Zoo.all

let test_zoo_ii_one () =
  List.iter
    (fun ((k : Shmls.Ast.kernel), grid) ->
      let c = Shmls.compile k ~grid in
      let r = Shmls.Cycle_sim.run c.c_design in
      if r.deadlocked then Alcotest.failf "%s deadlocked" k.k_name;
      let ii =
        float_of_int r.cycles /. float_of_int (Shmls.Design.total_padded c.c_design)
      in
      if ii > 1.7 then Alcotest.failf "%s: effective II %.2f" k.k_name ii)
    Shmls_kernels.Zoo.all

let test_halo2_neighbourhoods () =
  (* halo-2 kernels must get 5-wide neighbourhood windows *)
  let c = Shmls.compile Shmls_kernels.Zoo.biharmonic_2d ~grid:[ 16; 14 ] in
  Alcotest.(check (list int)) "halo 2" [ 2; 2 ] c.c_design.d_halo;
  let has_25_wide =
    List.exists
      (fun (s : Shmls.Design.stream) -> s.st_width_bits = 25 * 64)
      c.c_design.d_streams
  in
  Alcotest.(check bool) "25-element neighbourhood stream" true has_25_wide

let test_zoo_beats_baselines () =
  (* the paper's headline relationship holds across the zoo: HMLS at
     II=1 clears DaCe's II=9 pipeline on every kernel *)
  List.iter
    (fun ((k : Shmls.Ast.kernel), _) ->
      let grid =
        match k.k_rank with 2 -> [ 256; 128 ] | _ -> [ 128; 64; 32 ]
      in
      match Shmls.evaluate_all k ~grid with
      | Shmls.Flow.Success hmls :: Shmls.Flow.Success dace :: _ ->
        if hmls.s_est.e_mpts <= dace.s_est.e_mpts then
          Alcotest.failf "%s: HMLS (%.1f) not above DaCe (%.1f)" k.k_name
            hmls.s_est.e_mpts dace.s_est.e_mpts
      | _ -> Alcotest.failf "%s: evaluation failed" k.k_name)
    Shmls_kernels.Zoo.all

let test_zoo_fits_device () =
  List.iter
    (fun ((k : Shmls.Ast.kernel), _) ->
      let grid =
        match k.k_rank with 2 -> [ 512; 256 ] | _ -> [ 256; 128; 64 ]
      in
      let c = Shmls.compile k ~grid in
      let u = Shmls.Resources.of_design c.c_design in
      if not (Shmls.Resources.fits u) then
        Alcotest.failf "%s does not fit at production size" k.k_name)
    Shmls_kernels.Zoo.all

let () =
  Alcotest.run "zoo"
    [
      ( "generalisation",
        [
          Alcotest.test_case "bit-exact on every kernel" `Quick test_zoo_bit_exact;
          Alcotest.test_case "II~1 on every kernel" `Quick test_zoo_ii_one;
          Alcotest.test_case "halo-2 neighbourhoods" `Quick test_halo2_neighbourhoods;
          Alcotest.test_case "beats DaCe across the zoo" `Quick
            test_zoo_beats_baselines;
          Alcotest.test_case "fits at production sizes" `Quick test_zoo_fits_device;
        ] );
    ]
