examples/host_runtime.mli:
