examples/psy_frontend.mli:
