examples/tracer_advection_repro.ml: Format List Printf Shmls Shmls_kernels
