examples/quickstart.ml: Format List Printf Shmls String
