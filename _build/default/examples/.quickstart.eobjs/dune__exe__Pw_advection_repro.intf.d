examples/pw_advection_repro.mli:
