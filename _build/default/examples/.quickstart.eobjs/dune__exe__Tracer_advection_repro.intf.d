examples/tracer_advection_repro.mli:
