examples/host_runtime.ml: List Printf Shmls Shmls_host Shmls_kernels String
