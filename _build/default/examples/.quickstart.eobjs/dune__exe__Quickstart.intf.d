examples/quickstart.mli:
