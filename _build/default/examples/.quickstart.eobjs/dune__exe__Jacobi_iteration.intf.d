examples/jacobi_iteration.mli:
