examples/psy_frontend.ml: List Printf Shmls String
