examples/jacobi_iteration.ml: Float List Printf Shmls Shmls_host Shmls_kernels
