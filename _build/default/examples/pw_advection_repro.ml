(* PW advection walk-through: the paper's first evaluation kernel,
   end to end.

   Demonstrates the port-budget reasoning (7 AXI ports per CU -> 4 CUs),
   the per-field dataflow split, bit-exact functional verification, and
   the five-flow comparison at one paper size.

     dune exec examples/pw_advection_repro.exe *)

module PW = Shmls_kernels.Pw_advection

let () =
  let k = PW.kernel in
  Printf.printf "PW advection: %d stencil computations over fields [%s]\n"
    (List.length k.k_stencils)
    (String.concat "; " (Shmls.Ast.field_names k));

  (* laptop-scale grid: full functional verification *)
  let c = Shmls.compile k ~grid:PW.grid_small in
  Printf.printf
    "port budget: %d ports per CU (6 fields + 1 small-data bundle) -> %d CUs \
     on the %d-port U280 shell\n"
    c.c_ports_per_cu c.c_cu Shmls.U280.max_axi_ports;
  let v = Shmls.verify c in
  List.iter
    (fun (f, d) -> Printf.printf "  %-3s simulated vs reference: max |diff| = %g\n" f d)
    v.v_fields;

  (* the cycle simulator confirms the II=1 streaming behaviour *)
  let sim = Shmls.Cycle_sim.run c.c_design in
  Printf.printf "cycle sim: %d cycles for %d elements -> effective II %.3f\n"
    sim.cycles
    (Shmls.Design.total_padded c.c_design)
    (float_of_int sim.cycles /. float_of_int (Shmls.Design.total_padded c.c_design));

  (* paper-scale evaluation: who wins and by how much *)
  let grid = PW.grid_8m in
  Printf.printf "\n=== all flows at the paper's 8M size ===\n";
  let outcomes = Shmls.evaluate_all k ~grid in
  List.iter
    (fun o ->
      match o with
      | Shmls.Flow.Success s ->
        Format.printf "  %-14s %8.2f MPt/s  %5.1f W  %8.2f J@." s.s_flow
          s.s_est.e_mpts s.s_power.p_total_w s.s_power.p_energy_j
      | Shmls.Flow.Failure f -> Printf.printf "  %-14s -- %s\n" f.f_flow f.f_reason)
    outcomes;
  (match outcomes with
  | Shmls.Flow.Success hmls :: Shmls.Flow.Success dace :: _ ->
    Printf.printf
      "\nStencil-HMLS vs DaCe (the next-best flow): %.0fx faster, %.0fx less \
       energy\n(the paper reports 90-100x and 85-92x; its own estimate is \
       4 CUs x 9 II x 3 split = 108x)\n"
      (hmls.s_est.e_mpts /. dace.s_est.e_mpts)
      (dace.s_power.p_energy_j /. hmls.s_power.p_energy_j)
  | _ -> ())
