(* Time-stepping on the device: Jacobi iteration for the Laplace
   equation, enqueueing the compiled relaxation kernel repeatedly with
   the classic two-buffer swap (every production stencil host code works
   this way; the paper's kernels are single steps of such loops).

     dune exec examples/jacobi_iteration.exe *)

module Host = Shmls_host.Host

let nx = 48
let ny = 48

let () =
  let kernel = Shmls_kernels.Didactic.laplace_2d in
  let c = Shmls.compile kernel ~grid:[ nx; ny ] in
  let device = Host.create_device () in
  let prog = Host.build_program device c in

  (* two device buffers; the halo ring acts as the fixed boundary *)
  let a = Host.alloc_field_buffer prog in
  let b = Host.alloc_field_buffer prog in
  (* boundary condition: hot left edge (phi = 1 at i = -1), cold
     elsewhere; interior starts at 0 *)
  List.iter
    (fun (buf : Host.buffer) ->
      for j = -1 to ny do
        Shmls.Grid.set buf.buf_grid [ -1; j ] 1.0
      done)
    [ a; b ];

  let residual src dst =
    let r = ref 0.0 in
    for i = 0 to nx - 1 do
      for j = 0 to ny - 1 do
        r :=
          Float.max !r
            (Float.abs
               (Shmls.Grid.get dst.Host.buf_grid [ i; j ]
               -. Shmls.Grid.get src.Host.buf_grid [ i; j ]))
      done
    done;
    !r
  in

  let max_steps = 2000 in
  let tol = 1e-6 in
  let device_seconds = ref 0.0 in
  let rec go step src dst =
    let event = Host.enqueue prog [ Host.Buffer src; Host.Buffer dst ] in
    device_seconds := !device_seconds +. Host.duration_s event;
    let r = residual src dst in
    if step mod 200 = 0 then
      Printf.printf "step %4d   residual %.3e\n" step r;
    if r < tol then (step, r)
    else if step >= max_steps then (step, r)
    else go (step + 1) dst src
  in
  let steps, r = go 1 a b in
  Printf.printf "\nstopped at residual %.3e after %d Jacobi steps\n" r steps;
  Printf.printf "simulated device time: %.3f ms total (%.1f us/step at %d CUs)\n"
    (1000.0 *. !device_seconds)
    (1e6 *. !device_seconds /. float_of_int steps)
    c.c_cu;

  (* sanity: the converged solution is harmonic (discrete mean value
     property) away from the boundary *)
  let final = if steps mod 2 = 1 then b else a in
  let mid = Shmls.Grid.get final.Host.buf_grid [ nx / 2; ny / 2 ] in
  Printf.printf "centre value %.4f (between the boundary extremes 0 and 1)\n" mid
