(* The textual frontend: kernels as plain text in the PSyclone-stand-in
   language, parsed into the same AST the eDSL produces and sent through
   the identical pipeline.  Also exercises the IR printer/parser
   round-trip the way mlir-opt users would.

     dune exec examples/psy_frontend.exe *)

let source =
  {|
kernel shallow_smooth
rank 2
input  h
input  hu
output h_out
output flux
param  damp
! a smoothing pass over the height field
h_out = 0.25 * (h[-1,0] + h[1,0] + h[0,-1] + h[0,1]) * damp
! and an upwinded flux using both fields
flux = hu[0,0] * (h[1,0] - h[-1,0]) + 0.5 * abs(hu[0,0]) * (h[1,0] - 2 * h[0,0] + h[-1,0])
end
|}

let () =
  let kernel = Shmls.Psy_parser.parse source in
  Printf.printf "parsed kernel %s: rank %d, %d stencils, halo %s\n"
    kernel.k_name kernel.k_rank
    (List.length kernel.k_stencils)
    (String.concat "," (List.map string_of_int (Shmls.Ast.halo kernel)));

  (* through the pipeline, like any other kernel *)
  let c = Shmls.compile kernel ~grid:[ 48; 48 ] in
  let v = Shmls.verify c in
  Printf.printf "compiled (%d CUs) and verified: max |diff| = %g\n" c.c_cu
    v.v_max_diff;

  (* the stencil-dialect IR round-trips through text *)
  let text = Shmls.emit_stencil_text c in
  let reparsed = Shmls.Parser.parse_module text in
  Shmls.Verifier.verify_exn reparsed;
  let again = Shmls.Printer.to_string reparsed in
  Printf.printf "stencil IR: %d lines; print -> parse -> print is %s\n"
    (List.length (String.split_on_char '\n' text))
    (if String.equal text again then "the identity" else "NOT stable (bug!)");

  (* show the first few lines of the IR that a PSyclone/Devito/Flang
     frontend would hand to Stencil-HMLS *)
  print_endline "\nstencil dialect (excerpt):";
  String.split_on_char '\n' text
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter (fun l -> print_endline ("  " ^ l))
