(* The host runtime: driving a compiled kernel the way the paper's
   OpenCL host codes do — device, program, buffers, enqueue, profiled
   events — plus the CIRCT netlist the same design lowers to.

     dune exec examples/host_runtime.exe *)

module Host = Shmls_host.Host

let () =
  (* compile PW advection at a laptop-scale grid *)
  let kernel = Shmls_kernels.Pw_advection.kernel in
  let c = Shmls.compile kernel ~grid:[ 32; 16; 12 ] in

  (* set up the "device" and run, OpenCL style *)
  let device = Host.create_device () in
  Printf.printf "device: %s\n" device.dev_name;
  let prog = Host.build_program device c in
  let event, fields, _smalls =
    Host.run_kernel prog ~params:[ ("tcx", 0.12); ("tcy", 0.09) ]
  in
  Printf.printf "enqueued %s: %.0f cycles on %d CU(s), %.3f ms profiled\n"
    event.ev_kernel event.ev_cycles event.ev_cu
    (1000.0 *. Host.duration_s event);
  Printf.printf "throughput: %.1f MPt/s; device memory in use: %.1f MB\n"
    (Host.mpts_of_event prog event)
    (float_of_int device.allocated_bytes /. 1024.0 /. 1024.0);

  (* read a result back and spot-check it *)
  let su = List.assoc "su" fields in
  let host_copy = Shmls.Grid.create su.Host.buf_grid.bounds in
  Host.read_buffer su host_copy;
  Printf.printf "su checksum: %.6f (deterministic: inputs are seeded)\n"
    (Shmls.Grid.checksum host_copy);

  (* the same design as a CIRCT netlist (future-work path of the paper) *)
  let circt = Shmls.emit_circt_text c in
  Printf.printf "\nCIRCT lowering (%d lines), first lines:\n"
    (List.length (String.split_on_char '\n' circt));
  String.split_on_char '\n' circt
  |> List.filteri (fun i _ -> i < 8)
  |> List.iter (fun l -> print_endline ("  " ^ l))
