(* Tracer advection walk-through: the paper's second, much larger
   evaluation kernel — 24 chained stencil computations, 17 arguments,
   one compute unit.

   Shows what chained dependencies do to the dataflow design: inter-stage
   shift buffers on the intermediates, stream duplication, and the
   delay-matching FIFO depths computed by the balancing pass (StencilFlow
   deadlocks for want of exactly this).

     dune exec examples/tracer_advection_repro.exe *)

module TA = Shmls_kernels.Tracer_advection

let () =
  let k = TA.kernel in
  let deps = Shmls.Ast.dependencies k in
  Printf.printf
    "tracer advection: %d stencils, %d memory arguments, %d dependency edges\n"
    (List.length k.k_stencils) TA.n_args (List.length deps);

  let c = Shmls.compile k ~grid:TA.grid_small in
  Printf.printf "port budget: %d ports per CU -> %d CU (2 CUs would need bundling)\n"
    c.c_ports_per_cu c.c_cu;

  (* what the chains cost: stage and stream inventory *)
  let count p = List.length (List.filter p c.c_design.d_stages) in
  Printf.printf "design: %d shift buffers, %d duplicators, %d compute stages\n"
    (count (function Shmls.Design.Shift _ -> true | _ -> false))
    (count (function Shmls.Design.Dup _ -> true | _ -> false))
    (count (function Shmls.Design.Compute _ -> true | _ -> false));
  let deepest =
    List.fold_left
      (fun acc (s : Shmls.Design.stream) -> max acc s.st_depth)
      0 c.c_design.d_streams
  in
  Printf.printf
    "deepest delay-matching FIFO: %d elements (default would be %d — without \
     balancing the network deadlocks, which is what happened to StencilFlow)\n"
    deepest 4;

  (* numerics: the 67-stage design is still bit-exact *)
  let v = Shmls.verify c in
  Printf.printf "functional check over all %d output fields: max |diff| = %g\n"
    (List.length v.v_fields) v.v_max_diff;

  (* paper-scale comparison *)
  Printf.printf "\n=== all flows at the paper's 8M size ===\n";
  let outcomes = Shmls.evaluate_all k ~grid:TA.grid_8m in
  List.iter
    (fun o ->
      match o with
      | Shmls.Flow.Success s ->
        Format.printf "  %-14s %8.2f MPt/s  II=%-3d  %5.1f W  %8.2f J@." s.s_flow
          s.s_est.e_mpts s.s_est.e_ii s.s_power.p_total_w s.s_power.p_energy_j
      | Shmls.Flow.Failure f -> Printf.printf "  %-14s -- %s\n" f.f_flow f.f_reason)
    outcomes;
  (match outcomes with
  | Shmls.Flow.Success hmls :: Shmls.Flow.Success dace :: _ ->
    Printf.printf
      "\nStencil-HMLS vs DaCe: %.0fx faster (paper: 14-21x; the dependency \
       chains\nprevent the clean 3x per-field split PW advection enjoys, and \
       the port\nbudget allows only 1 CU)\n"
      (hmls.s_est.e_mpts /. dace.s_est.e_mpts)
  | _ -> ())
