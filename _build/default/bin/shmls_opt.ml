(* shmls-opt: the mlir-opt equivalent for this compiler.

   Reads a module in the generic textual form, runs a comma-separated
   pass pipeline, and prints the result:

     shmls-opt --passes stencil-shape-inference,stencil-to-hls input.mlir
     shmls-opt --list-passes
     echo '...' | shmls-opt --passes canonicalize - *)

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  Buffer.contents buf

let run_tool passes_spec verify_each stats list_passes input =
  Shmls_dialects.Register.all ();
  (* the passes register themselves at module init; reference the
     libraries so the linker keeps them *)
  ignore Shmls_transforms.Shape_inference.pass;
  ignore Shmls_transforms.Stencil_to_cpu.pass;
  ignore Shmls_transforms.Stencil_to_hls.pass;
  ignore Shmls_transforms.Apply_split.pass;
  ignore Shmls_transforms.Loop_raise.pass;
  ignore Shmls_ir.Dce.pass;
  ignore Shmls_ir.Cse.pass;
  ignore Shmls_ir.Fold.pass;
  if list_passes then begin
    List.iter print_endline (Shmls_ir.Pass.registered_passes ());
    `Ok ()
  end
  else
    try
      let src =
        match input with
        | "-" -> read_all stdin
        | path ->
          let ic = open_in path in
          let s = read_all ic in
          close_in ic;
          s
      in
      let m = Shmls_ir.Parser.parse_module src in
      Shmls_ir.Verifier.verify_exn m;
      let passes = Shmls_ir.Pass.parse_pipeline passes_spec in
      let run_stats =
        Shmls_ir.Pass.run_pipeline ~verify_each passes m
      in
      if stats then
        List.iter
          (fun s -> Format.eprintf "%a@." Shmls_ir.Pass.pp_stat s)
          run_stats;
      print_endline (Shmls_ir.Printer.to_string m);
      `Ok ()
    with Shmls_support.Err.Error e ->
      `Error (false, Shmls_support.Err.to_string e)

open Cmdliner

let passes_arg =
  Arg.(
    value & opt string ""
    & info [ "p"; "passes" ] ~docv:"PIPELINE"
        ~doc:"Comma-separated pass pipeline to run.")

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify-each" ] ~doc:"Verify the module after every pass.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print per-pass statistics to stderr.")

let list_arg =
  Arg.(value & flag & info [ "list-passes" ] ~doc:"List registered passes and exit.")

let input_arg =
  Arg.(value & pos 0 string "-" & info [] ~docv:"INPUT" ~doc:"Input file ('-' for stdin).")

let cmd =
  let doc = "run compiler passes over Stencil-HMLS IR modules" in
  Cmd.v
    (Cmd.info "shmls-opt" ~doc)
    Term.(ret (const run_tool $ passes_arg $ verify_arg $ stats_arg $ list_arg $ input_arg))

let () = exit (Cmd.eval cmd)
