(* Printing kernels back to the textual kernel language: the inverse of
   {!Psy_parser}, so kernels defined with the eDSL can be saved as .psy
   files (and the parser can be property-tested by round-tripping). *)

let print_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

(* Fully parenthesised: precedence never matters on re-parse. *)
let rec print_expr (e : Ast.expr) =
  match e with
  | Ast.Field_ref (name, offset) ->
    Printf.sprintf "%s[%s]" name
      (String.concat "," (List.map string_of_int offset))
  | Ast.Small_ref (name, off) -> Printf.sprintf "%s(%d)" name off
  | Ast.Param_ref name -> name
  | Ast.Const v ->
    if v < 0.0 then Printf.sprintf "(%s)" (print_float v) else print_float v
  | Ast.Binop (op, a, b) -> (
    let sa = print_expr a and sb = print_expr b in
    match op with
    | Ast.Add -> Printf.sprintf "(%s + %s)" sa sb
    | Ast.Sub -> Printf.sprintf "(%s - %s)" sa sb
    | Ast.Mul -> Printf.sprintf "(%s * %s)" sa sb
    | Ast.Div -> Printf.sprintf "(%s / %s)" sa sb
    | Ast.Min -> Printf.sprintf "min(%s, %s)" sa sb
    | Ast.Max -> Printf.sprintf "max(%s, %s)" sa sb)
  | Ast.Unop (op, a) -> (
    let sa = print_expr a in
    match op with
    | Ast.Neg -> Printf.sprintf "(-%s)" sa
    | Ast.Sqrt -> Printf.sprintf "sqrt(%s)" sa
    | Ast.Exp -> Printf.sprintf "exp(%s)" sa
    | Ast.Abs -> Printf.sprintf "abs(%s)" sa)

let to_string (k : Ast.kernel) =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "kernel %s" k.k_name;
  line "rank %d" k.k_rank;
  List.iter
    (fun (fd : Ast.field_decl) ->
      let role =
        match fd.fd_role with
        | Ast.Input -> "input"
        | Ast.Output -> "output"
        | Ast.Inout -> "inout"
      in
      line "%s %s" role fd.fd_name)
    k.k_fields;
  List.iter
    (fun (sd : Ast.small_decl) -> line "small %s axis %d" sd.sd_name sd.sd_axis)
    k.k_smalls;
  List.iter (fun p -> line "param %s" p) k.k_params;
  List.iter
    (fun (s : Ast.stencil_def) -> line "%s = %s" s.sd_target (print_expr s.sd_expr))
    k.k_stencils;
  line "end";
  Buffer.contents buf

let to_file path k =
  let oc = open_out path in
  output_string oc (to_string k);
  close_out oc
