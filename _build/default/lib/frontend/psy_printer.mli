(** Printing kernels back to the textual kernel language — the inverse
    of {!Psy_parser}; [Psy_parser.parse (to_string k)] reconstructs [k]
    for any valid kernel. *)

val print_expr : Ast.expr -> string
val to_string : Ast.kernel -> string
val to_file : string -> Ast.kernel -> unit
