(** Lowering from the kernel AST to the stencil dialect — the
    DSL-frontend step of the paper's Figure 1.

    Shapes are static (the paper notes a new bitstream is generated per
    problem size): the same kernel lowered at two grids yields two
    modules. *)

open Shmls_ir

type lowered = {
  l_module : Ir.op;  (** the stencil-dialect module *)
  l_func : Ir.op;
  l_kernel : Ast.kernel;
  l_grid : int list;
  l_halo : int list;
}

(** Field argument type at a given grid/halo. *)
val field_ty : grid:int list -> halo:int list -> Ty.t

(** [lower k ~grid] validates and lowers [k]; raises {!Err.Error} on
    invalid kernels or rank mismatch. Pass [module_op] to append into an
    existing module. *)
val lower : ?module_op:Ir.op option -> Ast.kernel -> grid:int list -> lowered
