lib/frontend/psy_parser.mli: Ast
