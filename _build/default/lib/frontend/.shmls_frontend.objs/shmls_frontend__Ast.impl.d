lib/frontend/ast.ml: Array Err Hashtbl List String
