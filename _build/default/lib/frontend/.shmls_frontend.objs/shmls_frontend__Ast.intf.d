lib/frontend/ast.mli: Err
