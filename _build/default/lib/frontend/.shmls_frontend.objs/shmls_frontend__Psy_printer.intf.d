lib/frontend/psy_printer.mli: Ast
