lib/frontend/psy_printer.ml: Ast Buffer Float List Printf String
