lib/frontend/lower.mli: Ast Ir Shmls_ir Ty
