lib/frontend/lower.ml: Arith Ast Err Func Ir List Math_d Shmls_dialects Shmls_ir Stencil String Ty
