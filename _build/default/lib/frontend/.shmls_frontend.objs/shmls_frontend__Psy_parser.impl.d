lib/frontend/psy_parser.ml: Ast Err List Printf String
