lib/llvmir/ll.ml: Buffer Float List Printf String
