lib/llvmir/fplusplus.ml: Buffer Hashtbl List Ll Option Printf String
