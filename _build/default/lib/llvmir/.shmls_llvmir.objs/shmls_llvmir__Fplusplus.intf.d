lib/llvmir/fplusplus.mli: Ll
