lib/llvmir/ll.mli:
