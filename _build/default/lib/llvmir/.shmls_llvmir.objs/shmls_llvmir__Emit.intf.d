lib/llvmir/emit.mli: Ir Ll Shmls_ir
