lib/llvmir/emit.ml: Attr Err Func Hashtbl Hls Idgen Ir List Ll Printf Shmls_dialects Shmls_ir String Ty
