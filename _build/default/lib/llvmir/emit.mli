(** Lowering the HLS-dialect kernels to textual LLVM-IR — contribution
    (3) of the paper, following the Fortran-HLS approach it adopts:
    directives as void marker-function calls, streams as pointers to
    single-field structs with [@llvm.fpga.set.stream.depth] on the first
    element, and each dataflow region outlined into its own function. *)

open Shmls_ir

val marker_pipeline : int -> string
val marker_unroll : int -> string
val marker_array_partition : string -> int -> string
val marker_dataflow : string
val marker_interface : bundle:string -> bank:int -> string
val set_stream_depth : string

(** Emit one kernel function into the LLVM module. *)
val emit_kernel : Ll.modul -> Ir.op -> Ll.func

(** Emit every function tagged [hls_kernel]. *)
val emit_module : Ir.op -> Ll.modul
