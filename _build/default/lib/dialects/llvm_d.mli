(** The llvm dialect subset targeted by the HLS lowering: pointer and
    struct manipulation, calls, intrinsic markers. *)

open Shmls_ir

val alloca_op : string
val gep_op : string
val load_op : string
val store_op : string
val call_op : string
val constant_op : string
val undef_op : string
val return_op : string
val bitcast_op : string
val extractvalue_op : string
val insertvalue_op : string

val register : unit -> unit

val alloca : Builder.t -> elem:Ty.t -> Ir.value

(** Constant-index GEP via the [indices] attribute (e.g. [[0; 0]] for the
    first element of a stream struct). A dynamic index can be passed as a
    second operand with [indices = []]. *)
val gep : Builder.t -> indices:int list -> result_ty:Ty.t -> Ir.value -> Ir.value

val load : Builder.t -> Ir.value -> Ir.value
val store : Builder.t -> Ir.value -> Ir.value -> unit

val call :
  Builder.t ->
  callee:string ->
  ?operands:Ir.value list ->
  ?result_tys:Ty.t list ->
  unit ->
  Ir.op

val return_ : Builder.t -> Ir.value list -> unit
