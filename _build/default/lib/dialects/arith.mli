(** The arith dialect: constants, integer/float arithmetic, comparisons.

    Binary builders take operands of equal type and produce that type;
    the registered verifiers enforce this on raw IR too. *)

open Shmls_ir

val constant_op : string

val register : unit -> unit

val constant_f : Builder.t -> ?ty:Ty.t -> float -> Ir.value
val constant_i : Builder.t -> ?ty:Ty.t -> int -> Ir.value
val constant_index : Builder.t -> int -> Ir.value

(** Generic same-type binary op by name, e.g. ["arith.addf"]. *)
val binary : Builder.t -> string -> Ir.value -> Ir.value -> Ir.value

val addf : Builder.t -> Ir.value -> Ir.value -> Ir.value
val subf : Builder.t -> Ir.value -> Ir.value -> Ir.value
val mulf : Builder.t -> Ir.value -> Ir.value -> Ir.value
val divf : Builder.t -> Ir.value -> Ir.value -> Ir.value
val maxf : Builder.t -> Ir.value -> Ir.value -> Ir.value
val minf : Builder.t -> Ir.value -> Ir.value -> Ir.value
val addi : Builder.t -> Ir.value -> Ir.value -> Ir.value
val subi : Builder.t -> Ir.value -> Ir.value -> Ir.value
val muli : Builder.t -> Ir.value -> Ir.value -> Ir.value
val divsi : Builder.t -> Ir.value -> Ir.value -> Ir.value
val remsi : Builder.t -> Ir.value -> Ir.value -> Ir.value
val negf : Builder.t -> Ir.value -> Ir.value

(** [predicate] is an MLIR cmpf/cmpi predicate string (["olt"], ["sle"],
    ...); the result has type i1. *)
val cmpf : Builder.t -> predicate:string -> Ir.value -> Ir.value -> Ir.value

val cmpi : Builder.t -> predicate:string -> Ir.value -> Ir.value -> Ir.value
val select : Builder.t -> Ir.value -> Ir.value -> Ir.value -> Ir.value
val index_cast : Builder.t -> to_ty:Ty.t -> Ir.value -> Ir.value
val sitofp : Builder.t -> to_ty:Ty.t -> Ir.value -> Ir.value
