(* The llvm dialect subset the HLS lowering targets: pointer/struct
   manipulation, marker calls and intrinsics.  The names follow MLIR's llvm
   dialect; the final textual LLVM-IR is produced by Shmls_llvmir. *)

open Shmls_ir

let alloca_op = "llvm.alloca"
let gep_op = "llvm.getelementptr"
let load_op = "llvm.load"
let store_op = "llvm.store"
let call_op = "llvm.call"
let constant_op = "llvm.mlir.constant"
let undef_op = "llvm.mlir.undef"
let return_op = "llvm.return"
let bitcast_op = "llvm.bitcast"
let extractvalue_op = "llvm.extractvalue"
let insertvalue_op = "llvm.insertvalue"

let verify_gep (op : Ir.op) =
  match (Ir.Op.operands op, Ir.Op.results op) with
  | base :: _, [ r ] -> (
    match (Ir.Value.ty base, Ir.Value.ty r) with
    | Ty.Ptr _, Ty.Ptr _ -> Ok ()
    | _ -> Err.fail "llvm.getelementptr: pointer in, pointer out")
  | _ -> Err.fail "llvm.getelementptr: needs base pointer and one result"

let verify_load (op : Ir.op) =
  match (Ir.Op.operands op, Ir.Op.results op) with
  | [ p ], [ r ] -> (
    match Ir.Value.ty p with
    | Ty.Ptr elem when Ty.equal elem (Ir.Value.ty r) -> Ok ()
    | Ty.Ptr _ -> Err.fail "llvm.load: result type disagrees with pointee"
    | _ -> Err.fail "llvm.load: operand must be a pointer")
  | _ -> Err.fail "llvm.load: (ptr) -> elem"

let verify_store (op : Ir.op) =
  match Ir.Op.operands op with
  | [ v; p ] -> (
    match Ir.Value.ty p with
    | Ty.Ptr elem when Ty.equal elem (Ir.Value.ty v) -> Ok ()
    | Ty.Ptr _ -> Err.fail "llvm.store: value type disagrees with pointee"
    | _ -> Err.fail "llvm.store: second operand must be a pointer")
  | _ -> Err.fail "llvm.store: (value, ptr)"

let verify_call (op : Ir.op) =
  match Ir.Op.get_attr op "callee" with
  | Some (Attr.Sym _) -> Ok ()
  | _ -> Err.fail "llvm.call: needs callee symbol attr"

let register () =
  Dialect.register alloca_op;
  Dialect.register gep_op ~verify:verify_gep ~traits:[ Dialect.Pure ];
  Dialect.register load_op ~verify:verify_load;
  Dialect.register store_op ~verify:verify_store;
  Dialect.register call_op ~verify:verify_call;
  Dialect.register constant_op ~traits:[ Dialect.Pure ];
  Dialect.register undef_op ~traits:[ Dialect.Pure ];
  Dialect.register return_op ~traits:[ Dialect.Terminator ];
  Dialect.register bitcast_op ~traits:[ Dialect.Pure ];
  Dialect.register extractvalue_op ~traits:[ Dialect.Pure ];
  Dialect.register insertvalue_op ~traits:[ Dialect.Pure ]

(* ------------------------------------------------------------------ *)
(* Builders *)

let alloca b ~elem =
  Builder.insert_op1 b ~name:alloca_op ~result_ty:(Ty.Ptr elem) ()

(* Constant-index GEP, as used for stream structs: offsets like [0, 0]. *)
let gep b ~indices ~result_ty base =
  Builder.insert_op1 b ~name:gep_op ~operands:[ base ] ~result_ty
    ~attrs:[ ("indices", Attr.Ints indices) ]
    ()

let load b p =
  let elem =
    match Ir.Value.ty p with
    | Ty.Ptr elem -> elem
    | t -> Err.raise_error "llvm.load of non-pointer %s" (Ty.to_string t)
  in
  Builder.insert_op1 b ~name:load_op ~operands:[ p ] ~result_ty:elem ()

let store b v p = ignore (Builder.insert_op b ~name:store_op ~operands:[ v; p ] ())

let call b ~callee ?(operands = []) ?(result_tys = []) () =
  Builder.insert_op b ~name:call_op ~operands ~result_tys
    ~attrs:[ ("callee", Attr.Sym callee) ]
    ()

let return_ b values =
  ignore (Builder.insert_op b ~name:return_op ~operands:values ())
