(** The scf dialect: structured control flow. *)

open Shmls_ir

val for_op : string
val if_op : string
val yield_op : string

val register : unit -> unit

val yield : Builder.t -> Ir.value list -> unit

(** [for_ b ~lb ~ub ~step body]: a loop over [lb, ub) by [step] (all of
    index type); [body] receives a builder at the end of the loop block
    and the induction variable. A trailing [scf.yield] is added if the
    body does not end in a terminator. *)
val for_ :
  Builder.t ->
  lb:Ir.value ->
  ub:Ir.value ->
  step:Ir.value ->
  (Builder.t -> Ir.value -> unit) ->
  Ir.op

(** Loop with loop-carried values: [body] receives the builder, the
    induction variable and the current iteration values, and returns the
    next values; the loop op's results are the final values. *)
val for_iter :
  Builder.t ->
  lb:Ir.value ->
  ub:Ir.value ->
  step:Ir.value ->
  init:Ir.value list ->
  (Builder.t -> Ir.value -> Ir.value list -> Ir.value list) ->
  Ir.op

val if_ :
  Builder.t ->
  cond:Ir.value ->
  then_:(Builder.t -> unit) ->
  else_:(Builder.t -> unit) ->
  result_tys:Ty.t list ->
  Ir.op
