lib/dialects/math_d.mli: Builder Ir Shmls_ir
