lib/dialects/hls.mli: Builder Ir Shmls_ir Ty
