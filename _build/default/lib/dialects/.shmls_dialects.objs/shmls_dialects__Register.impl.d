lib/dialects/register.ml: Arith Func Hls Llvm_d Math_d Memref Scf Stencil
