lib/dialects/register.mli:
