lib/dialects/memref.ml: Builder Dialect Err Ir List Shmls_ir Ty
