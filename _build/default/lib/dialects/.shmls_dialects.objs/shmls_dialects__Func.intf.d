lib/dialects/func.mli: Builder Ir Shmls_ir Ty
