lib/dialects/memref.mli: Builder Ir Shmls_ir Ty
