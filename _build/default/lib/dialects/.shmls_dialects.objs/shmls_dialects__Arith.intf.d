lib/dialects/arith.mli: Builder Ir Shmls_ir Ty
