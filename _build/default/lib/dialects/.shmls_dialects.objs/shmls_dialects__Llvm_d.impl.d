lib/dialects/llvm_d.ml: Attr Builder Dialect Err Ir Shmls_ir Ty
