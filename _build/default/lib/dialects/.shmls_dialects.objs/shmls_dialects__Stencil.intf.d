lib/dialects/stencil.mli: Builder Ir Shmls_ir Ty
