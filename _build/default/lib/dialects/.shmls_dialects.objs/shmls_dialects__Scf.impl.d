lib/dialects/scf.ml: Builder Dialect Err Ir List Shmls_ir Ty
