lib/dialects/arith.ml: Attr Builder Dialect Err Ir List Shmls_ir Ty
