lib/dialects/scf.mli: Builder Ir Shmls_ir Ty
