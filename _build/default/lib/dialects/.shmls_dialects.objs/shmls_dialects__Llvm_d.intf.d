lib/dialects/llvm_d.mli: Builder Ir Shmls_ir Ty
