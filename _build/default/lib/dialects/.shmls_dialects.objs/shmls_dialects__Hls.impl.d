lib/dialects/hls.ml: Attr Builder Dialect Err Ir Shmls_ir Ty
