lib/dialects/math_d.ml: Builder Dialect Err Ir List Shmls_ir Ty
