(** The HLS dialect — contribution (1) of the paper: a vendor-agnostic
    abstraction of Vitis HLS's dataflow features.

    Ten operations (paper Listing 3): [create_stream], [read], [write],
    [empty], [full], [pipeline], [unroll], [array_partition], [dataflow],
    [interface]. AXI protocols are encoded as i32 codes (paper
    Listing 2). *)

open Shmls_ir

val create_stream_op : string
val read_op : string
val write_op : string
val empty_op : string
val full_op : string
val pipeline_op : string
val unroll_op : string
val array_partition_op : string
val dataflow_op : string
val interface_op : string

val axi4 : int
val axi4_lite : int
val axi4_stream : int

(** FIFO depth used when [create_stream] has no explicit depth. *)
val default_stream_depth : int

val register : unit -> unit

val create_stream : Builder.t -> ?depth:int -> elem:Ty.t -> unit -> Ir.value
val read : Builder.t -> Ir.value -> Ir.value
val write : Builder.t -> Ir.value -> Ir.value -> unit
val empty : Builder.t -> Ir.value -> Ir.value
val full : Builder.t -> Ir.value -> Ir.value

(** Marker inside a loop body: pipeline the enclosing loop at the given
    initiation interval. *)
val pipeline : Builder.t -> ii:int -> unit

(** Marker: unroll the enclosing loop ([factor = 0] = full unroll). *)
val unroll : Builder.t -> factor:int -> unit

val array_partition :
  Builder.t -> ?factor:int -> ?dim:int -> kind:string -> Ir.value -> unit

(** A concurrent dataflow stage; [stage] labels it for design
    extraction. *)
val dataflow : Builder.t -> ?stage:string -> (Builder.t -> unit) -> Ir.op

val interface :
  Builder.t ->
  ?protocol:int ->
  ?hbm_bank:int ->
  mode:string ->
  bundle:string ->
  Ir.value ->
  unit

(** {2 Accessors} *)

val stream_depth : Ir.op -> int
val stream_elem : Ir.op -> Ty.t
val dataflow_body : Ir.op -> Ir.block
val dataflow_stage : Ir.op -> string
val pipeline_ii : Ir.op -> int
