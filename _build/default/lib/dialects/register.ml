(* One-stop registration of every dialect.  Registration is idempotent, so
   calling [all] repeatedly (e.g. from each test suite) is safe. *)

let all () =
  Func.register ();
  Arith.register ();
  Math_d.register ();
  Scf.register ();
  Memref.register ();
  Llvm_d.register ();
  Stencil.register ();
  Hls.register ()
