(* The arith dialect: constants, integer/float arithmetic, comparisons. *)

open Shmls_ir

let constant_op = "arith.constant"

let binary_float_ops = [ "arith.addf"; "arith.subf"; "arith.mulf"; "arith.divf";
                         "arith.maximumf"; "arith.minimumf" ]

let binary_int_ops =
  [ "arith.addi"; "arith.subi"; "arith.muli"; "arith.divsi"; "arith.remsi" ]

let verify_constant (op : Ir.op) =
  match (Ir.Op.get_attr op "value", Ir.Op.results op) with
  | Some (Attr.Float _), [ r ] when Ty.is_float (Ir.Value.ty r) -> Ok ()
  | Some (Attr.Int _), [ r ]
    when Ty.is_int (Ir.Value.ty r) || Ty.is_index (Ir.Value.ty r) ->
    Ok ()
  | _ -> Err.fail "arith.constant: value attr kind must match result type"

let verify_same_type_binary (op : Ir.op) =
  match (Ir.Op.operands op, Ir.Op.results op) with
  | [ a; b ], [ r ]
    when Ty.equal (Ir.Value.ty a) (Ir.Value.ty b)
         && Ty.equal (Ir.Value.ty a) (Ir.Value.ty r) ->
    Ok ()
  | _ -> Err.fail "binary arith op: operand/result types must agree"

let verify_cmp (op : Ir.op) =
  match (Ir.Op.get_attr op "predicate", Ir.Op.operands op, Ir.Op.results op) with
  | Some (Attr.Str _), [ a; b ], [ r ]
    when Ty.equal (Ir.Value.ty a) (Ir.Value.ty b) && Ty.equal (Ir.Value.ty r) Ty.I1
    ->
    Ok ()
  | _ -> Err.fail "cmp op: needs predicate attr, equal operand types, i1 result"

let verify_select (op : Ir.op) =
  match (Ir.Op.operands op, Ir.Op.results op) with
  | [ c; a; b ], [ r ]
    when Ty.equal (Ir.Value.ty c) Ty.I1
         && Ty.equal (Ir.Value.ty a) (Ir.Value.ty b)
         && Ty.equal (Ir.Value.ty a) (Ir.Value.ty r) ->
    Ok ()
  | _ -> Err.fail "arith.select: (i1, T, T) -> T"

let register () =
  Dialect.register constant_op ~verify:verify_constant ~traits:[ Dialect.Pure ];
  List.iter
    (fun name ->
      let traits =
        if name = "arith.addf" || name = "arith.mulf" || name = "arith.maximumf"
           || name = "arith.minimumf"
        then [ Dialect.Pure; Dialect.Commutative ]
        else [ Dialect.Pure ]
      in
      Dialect.register name ~verify:verify_same_type_binary ~traits)
    binary_float_ops;
  List.iter
    (fun name ->
      let traits =
        if name = "arith.addi" || name = "arith.muli" then
          [ Dialect.Pure; Dialect.Commutative ]
        else [ Dialect.Pure ]
      in
      Dialect.register name ~verify:verify_same_type_binary ~traits)
    binary_int_ops;
  Dialect.register "arith.cmpf" ~verify:verify_cmp ~traits:[ Dialect.Pure ];
  Dialect.register "arith.cmpi" ~verify:verify_cmp ~traits:[ Dialect.Pure ];
  Dialect.register "arith.select" ~verify:verify_select ~traits:[ Dialect.Pure ];
  Dialect.register "arith.negf" ~traits:[ Dialect.Pure ];
  Dialect.register "arith.index_cast" ~traits:[ Dialect.Pure ];
  Dialect.register "arith.sitofp" ~traits:[ Dialect.Pure ];
  Dialect.register "arith.fptosi" ~traits:[ Dialect.Pure ]

(* ------------------------------------------------------------------ *)
(* Builders *)

let constant_f b ?(ty = Ty.F64) v =
  Builder.insert_op1 b ~name:constant_op ~result_ty:ty
    ~attrs:[ ("value", Attr.Float v) ]
    ()

let constant_i b ?(ty = Ty.I64) v =
  Builder.insert_op1 b ~name:constant_op ~result_ty:ty
    ~attrs:[ ("value", Attr.Int v) ]
    ()

let constant_index b v = constant_i b ~ty:Ty.Index v

let binary b name x y =
  Builder.insert_op1 b ~name ~operands:[ x; y ] ~result_ty:(Ir.Value.ty x) ()

let addf b x y = binary b "arith.addf" x y
let subf b x y = binary b "arith.subf" x y
let mulf b x y = binary b "arith.mulf" x y
let divf b x y = binary b "arith.divf" x y
let maxf b x y = binary b "arith.maximumf" x y
let minf b x y = binary b "arith.minimumf" x y
let addi b x y = binary b "arith.addi" x y
let subi b x y = binary b "arith.subi" x y
let muli b x y = binary b "arith.muli" x y
let divsi b x y = binary b "arith.divsi" x y
let remsi b x y = binary b "arith.remsi" x y

let negf b x =
  Builder.insert_op1 b ~name:"arith.negf" ~operands:[ x ]
    ~result_ty:(Ir.Value.ty x) ()

let cmpf b ~predicate x y =
  Builder.insert_op1 b ~name:"arith.cmpf" ~operands:[ x; y ] ~result_ty:Ty.I1
    ~attrs:[ ("predicate", Attr.Str predicate) ]
    ()

let cmpi b ~predicate x y =
  Builder.insert_op1 b ~name:"arith.cmpi" ~operands:[ x; y ] ~result_ty:Ty.I1
    ~attrs:[ ("predicate", Attr.Str predicate) ]
    ()

let select b c x y =
  Builder.insert_op1 b ~name:"arith.select" ~operands:[ c; x; y ]
    ~result_ty:(Ir.Value.ty x) ()

let index_cast b ~to_ty x =
  Builder.insert_op1 b ~name:"arith.index_cast" ~operands:[ x ] ~result_ty:to_ty ()

let sitofp b ~to_ty x =
  Builder.insert_op1 b ~name:"arith.sitofp" ~operands:[ x ] ~result_ty:to_ty ()
