(** The memref dialect: allocation and memory access on shaped buffers. *)

open Shmls_ir

val alloc_op : string
val alloca_op : string
val dealloc_op : string
val load_op : string
val store_op : string
val copy_op : string

val register : unit -> unit

val alloc : Builder.t -> shape:int list -> elem:Ty.t -> Ir.value
val alloca : Builder.t -> shape:int list -> elem:Ty.t -> Ir.value
val dealloc : Builder.t -> Ir.value -> unit

(** [load b mr indices]: indices are index-typed, one per dimension. *)
val load : Builder.t -> Ir.value -> Ir.value list -> Ir.value

val store : Builder.t -> Ir.value -> Ir.value -> Ir.value list -> unit
val copy : Builder.t -> src:Ir.value -> dst:Ir.value -> unit
