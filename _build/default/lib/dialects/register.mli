(** One-stop registration of every dialect (idempotent). *)

val all : unit -> unit
