(* The memref dialect: allocation and memory access on shaped buffers. *)

open Shmls_ir

let alloc_op = "memref.alloc"
let alloca_op = "memref.alloca"
let dealloc_op = "memref.dealloc"
let load_op = "memref.load"
let store_op = "memref.store"
let copy_op = "memref.copy"

let verify_alloc (op : Ir.op) =
  match Ir.Op.results op with
  | [ r ] -> (
    match Ir.Value.ty r with
    | Ty.Memref _ -> Ok ()
    | _ -> Err.fail "alloc: result must be a memref")
  | _ -> Err.fail "alloc: exactly one result"

let verify_load (op : Ir.op) =
  match (Ir.Op.operands op, Ir.Op.results op) with
  | mr :: indices, [ r ] -> (
    match Ir.Value.ty mr with
    | Ty.Memref (shape, elem)
      when List.length indices = List.length shape
           && List.for_all (fun i -> Ty.is_index (Ir.Value.ty i)) indices
           && Ty.equal elem (Ir.Value.ty r) ->
      Ok ()
    | _ -> Err.fail "memref.load: (memref, index...) -> elem, rank must match")
  | _ -> Err.fail "memref.load: needs memref operand and one result"

let verify_store (op : Ir.op) =
  match Ir.Op.operands op with
  | value :: mr :: indices -> (
    match Ir.Value.ty mr with
    | Ty.Memref (shape, elem)
      when List.length indices = List.length shape
           && List.for_all (fun i -> Ty.is_index (Ir.Value.ty i)) indices
           && Ty.equal elem (Ir.Value.ty value) ->
      Ok ()
    | _ -> Err.fail "memref.store: (elem, memref, index...), rank must match")
  | _ -> Err.fail "memref.store: needs value and memref operands"

let verify_copy (op : Ir.op) =
  match Ir.Op.operands op with
  | [ src; dst ] when Ty.equal (Ir.Value.ty src) (Ir.Value.ty dst) -> Ok ()
  | _ -> Err.fail "memref.copy: (memref, memref) of equal type"

let register () =
  Dialect.register alloc_op ~verify:verify_alloc;
  Dialect.register alloca_op ~verify:verify_alloc;
  Dialect.register dealloc_op;
  Dialect.register load_op ~verify:verify_load;
  Dialect.register store_op ~verify:verify_store;
  Dialect.register copy_op ~verify:verify_copy;
  Dialect.register "memref.dim" ~traits:[ Dialect.Pure ]

(* ------------------------------------------------------------------ *)
(* Builders *)

let alloc b ~shape ~elem =
  Builder.insert_op1 b ~name:alloc_op ~result_ty:(Ty.Memref (shape, elem)) ()

let alloca b ~shape ~elem =
  Builder.insert_op1 b ~name:alloca_op ~result_ty:(Ty.Memref (shape, elem)) ()

let dealloc b mr = ignore (Builder.insert_op b ~name:dealloc_op ~operands:[ mr ] ())

let load b mr indices =
  let elem =
    match Ir.Value.ty mr with
    | Ty.Memref (_, elem) -> elem
    | t -> Err.raise_error "memref.load of non-memref %s" (Ty.to_string t)
  in
  Builder.insert_op1 b ~name:load_op ~operands:(mr :: indices) ~result_ty:elem ()

let store b value mr indices =
  ignore (Builder.insert_op b ~name:store_op ~operands:(value :: mr :: indices) ())

let copy b ~src ~dst =
  ignore (Builder.insert_op b ~name:copy_op ~operands:[ src; dst ] ())
