(** The stencil dialect: the high-level representation of stencil
    computations emitted by DSL frontends and consumed by both the CPU
    lowering and the Stencil-HMLS FPGA lowering.

    Op set (after the open MLIR/xDSL stencil dialect):
    [external_load], [load], [apply], [access], [dyn_access], [index],
    [return], [store], [external_store], [cast]. *)

open Shmls_ir

val external_load_op : string
val load_op : string
val apply_op : string
val access_op : string
val dyn_access_op : string
val index_op : string
val return_op : string
val store_op : string
val external_store_op : string
val cast_op : string

val register : unit -> unit

(** [load b field]: make a field readable; the temp's bounds stay
    unresolved until shape inference. *)
val load : Builder.t -> Ir.value -> Ir.value

(** [access b temp ~offset]: read the temp at a constant offset from the
    current point. *)
val access : Builder.t -> Ir.value -> offset:int list -> Ir.value

(** [dyn_access b temp ~indices]: read at runtime indices (small
    coefficient arrays). *)
val dyn_access : Builder.t -> Ir.value -> indices:Ir.value list -> Ir.value

(** Current position along dimension [dim]. *)
val index : Builder.t -> dim:int -> Ir.value

val return_ : Builder.t -> Ir.value list -> unit

(** [apply b ~operands ~result_elems body]: the region args mirror the
    operands; [body] returns the per-point value for each result. *)
val apply :
  Builder.t ->
  operands:Ir.value list ->
  result_elems:Ty.t list ->
  (Builder.t -> Ir.value list -> Ir.value list) ->
  Ir.op

(** [store b temp field ~lb ~ub]: write the temp over [lb, ub). *)
val store : Builder.t -> Ir.value -> Ir.value -> lb:int list -> ub:int list -> unit

(** {2 Accessors used by the transforms} *)

val apply_region : Ir.op -> Ir.region
val apply_block : Ir.op -> Ir.block
val access_offset : Ir.op -> int list
val store_bounds : Ir.op -> Ty.bounds

(** All stencil.access / dyn_access ops in an apply body reading a given
    block argument. *)
val accesses_of_arg : Ir.op -> Ir.value -> Ir.op list
