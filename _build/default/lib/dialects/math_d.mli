(** The math dialect: float intrinsics that lower to LLVM intrinsics on
    the Vitis backend. *)

open Shmls_ir

val register : unit -> unit

val sqrt : Builder.t -> Ir.value -> Ir.value
val exp : Builder.t -> Ir.value -> Ir.value
val log : Builder.t -> Ir.value -> Ir.value
val absf : Builder.t -> Ir.value -> Ir.value
val tanh : Builder.t -> Ir.value -> Ir.value
val powf : Builder.t -> Ir.value -> Ir.value -> Ir.value
