(* The math dialect: transcendental and other float intrinsics that lower
   directly to LLVM intrinsics on the Vitis HLS backend. *)

open Shmls_ir

let unary_ops = [ "math.sqrt"; "math.exp"; "math.log"; "math.absf"; "math.tanh" ]
let binary_ops = [ "math.powf"; "math.atan2" ]

let verify_unary (op : Ir.op) =
  match (Ir.Op.operands op, Ir.Op.results op) with
  | [ a ], [ r ]
    when Ty.is_float (Ir.Value.ty a) && Ty.equal (Ir.Value.ty a) (Ir.Value.ty r) ->
    Ok ()
  | _ -> Err.fail "unary math op: (float) -> same float"

let verify_binary (op : Ir.op) =
  match (Ir.Op.operands op, Ir.Op.results op) with
  | [ a; b ], [ r ]
    when Ty.is_float (Ir.Value.ty a)
         && Ty.equal (Ir.Value.ty a) (Ir.Value.ty b)
         && Ty.equal (Ir.Value.ty a) (Ir.Value.ty r) ->
    Ok ()
  | _ -> Err.fail "binary math op: (float, float) -> same float"

let register () =
  List.iter
    (fun name -> Dialect.register name ~verify:verify_unary ~traits:[ Dialect.Pure ])
    unary_ops;
  List.iter
    (fun name -> Dialect.register name ~verify:verify_binary ~traits:[ Dialect.Pure ])
    binary_ops

let unary b name x =
  Builder.insert_op1 b ~name ~operands:[ x ] ~result_ty:(Ir.Value.ty x) ()

let sqrt b x = unary b "math.sqrt" x
let exp b x = unary b "math.exp" x
let log b x = unary b "math.log" x
let absf b x = unary b "math.absf" x
let tanh b x = unary b "math.tanh" x

let powf b x y =
  Builder.insert_op1 b ~name:"math.powf" ~operands:[ x; y ]
    ~result_ty:(Ir.Value.ty x) ()
