lib/transforms/apply_split.ml: Builder Err Hashtbl Ir List Pass Shmls_dialects Shmls_ir Stencil Ty
