lib/transforms/loop_raise.ml: Arith Array Attr Builder Dialect Err Func Hashtbl Ir List Memref Pass Scf Shmls_dialects Shmls_ir Stencil Ty
