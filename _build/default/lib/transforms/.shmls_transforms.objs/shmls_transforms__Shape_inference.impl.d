lib/transforms/shape_inference.ml: Err Fun Hashtbl Ir List Pass Shmls_dialects Shmls_ir Stencil Ty
