lib/transforms/loop_raise.mli: Ir Pass Shmls_ir
