lib/transforms/stencil_to_cpu.ml: Arith Array Attr Builder Err Func Hashtbl Ir List Memref Pass Scf Shmls_dialects Shmls_ir Stencil Ty
