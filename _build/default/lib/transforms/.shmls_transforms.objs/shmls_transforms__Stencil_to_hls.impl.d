lib/transforms/stencil_to_hls.ml: Arith Array Attr Builder Err Func Hashtbl Hls Ir List Llvm_d Memref Pass Printf Scf Shmls_dialects Shmls_ir Stencil Ty
