lib/transforms/stencil_to_hls.mli: Ir Pass Shmls_ir
