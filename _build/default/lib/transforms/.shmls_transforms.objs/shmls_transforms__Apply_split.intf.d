lib/transforms/apply_split.mli: Ir Pass Shmls_ir
