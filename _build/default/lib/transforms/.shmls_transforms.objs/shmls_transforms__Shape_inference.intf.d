lib/transforms/shape_inference.mli: Ir Pass Shmls_ir
