lib/transforms/stencil_to_cpu.mli: Ir Pass Shmls_ir
