(** Stencil shape inference: propagate concrete bounds backwards from
    stencil.store ops through stencil.apply ops to stencil.load ops
    (mirrors xDSL's stencil-shape-inference pass). After this pass every
    stencil.temp type carries bounds, which the interpreter and both
    lowerings rely on. Raises {!Err.Error} if a required region exceeds a
    field's declared bounds. *)

open Shmls_ir

val run_on_func : Ir.op -> unit
val run_on_module : Ir.op -> unit
val pass : Pass.t
