(* Step 4 of the Stencil-HMLS transformation works on single-result
   stencil.apply ops: each result field's computation becomes its own
   dataflow stage.  CPU/GPU stencil pipelines prefer the opposite (fused,
   multi-result applies), so this module provides both directions:

   - [split]: a multi-result apply becomes one apply per result, each
     containing the backward slice of the corresponding returned value.
   - [fuse]: consecutive independent single-result applies with identical
     operand lists are merged into one multi-result apply (used to build
     the "no split" ablation and to exercise [split]). *)

open Shmls_ir
open Shmls_dialects

(* Backward slice: the ops inside [block] needed to compute [root]. *)
let backward_slice (block : Ir.block) (roots : Ir.value list) =
  let needed = Hashtbl.create 32 in
  let rec mark v =
    match Ir.Value.defining_op v with
    | Some op when op.Ir.o_parent <> None -> (
      match op.Ir.o_parent with
      | Some b when Ir.Block.equal b block ->
        if not (Hashtbl.mem needed op.Ir.o_id) then begin
          Hashtbl.replace needed op.Ir.o_id ();
          List.iter mark (Ir.Op.operands op)
        end
      | _ -> ())
    | _ -> ()
  in
  List.iter mark roots;
  List.filter (fun (o : Ir.op) -> Hashtbl.mem needed o.Ir.o_id) (Ir.Block.ops block)

(* Clone [ops] into builder [b], remapping operands through [mapping]
   (initialised with block-arg substitutions). Returns the mapping. *)
let clone_ops b mapping ops =
  let remap v =
    match Hashtbl.find_opt mapping (Ir.Value.id v) with
    | Some nv -> nv
    | None -> v
  in
  List.iter
    (fun (op : Ir.op) ->
      let cloned =
        Builder.insert_op b ~name:(Ir.Op.name op)
          ~operands:(List.map remap (Ir.Op.operands op))
          ~result_tys:(List.map Ir.Value.ty (Ir.Op.results op))
          ~attrs:(Ir.Op.attrs op) ()
      in
      List.iteri
        (fun i r -> Hashtbl.replace mapping (Ir.Value.id r) (Ir.Op.result cloned i))
        (Ir.Op.results op))
    ops;
  mapping

let split_one (apply : Ir.op) =
  if Ir.Op.num_results apply <= 1 then false
  else begin
    let block = Stencil.apply_block apply in
    let term =
      match Ir.Block.terminator block with
      | Some t -> t
      | None -> Err.raise_error "apply-split: apply without terminator"
    in
    let parent =
      match Ir.Op.parent apply with
      | Some b -> b
      | None -> Err.raise_error "apply-split: detached apply"
    in
    let b = Builder.before parent apply in
    let replacements =
      List.mapi
        (fun i returned ->
          let slice = backward_slice block [ returned ] in
          let new_apply =
            Stencil.apply b ~operands:(Ir.Op.operands apply)
              ~result_elems:[ Ty.element (Ir.Value.ty (Ir.Op.result apply i)) ]
              (fun bb args ->
                let mapping = Hashtbl.create 32 in
                List.iter2
                  (fun old_arg new_arg ->
                    Hashtbl.replace mapping (Ir.Value.id old_arg) new_arg)
                  (Ir.Block.args block) args;
                let mapping = clone_ops bb mapping slice in
                let remapped =
                  match Hashtbl.find_opt mapping (Ir.Value.id returned) with
                  | Some nv -> nv
                  | None -> returned (* returned a block arg or outer value *)
                in
                [ remapped ])
          in
          (* preserve inferred result bounds *)
          (Ir.Op.result new_apply 0).Ir.v_ty <- Ir.Value.ty (Ir.Op.result apply i);
          let ba = Ir.Block.args (Stencil.apply_block new_apply) in
          List.iteri
            (fun ai arg ->
              arg.Ir.v_ty <- Ir.Value.ty (Ir.Op.operand new_apply ai))
            ba;
          Ir.Op.result new_apply 0)
        (Ir.Op.operands term)
    in
    Ir.replace_op apply replacements;
    true
  end

let run_on_module (m : Ir.op) =
  let applies =
    Ir.Op.collect m (fun o ->
        Ir.Op.name o = Stencil.apply_op && Ir.Op.num_results o > 1)
  in
  List.fold_left (fun n apply -> if split_one apply then n + 1 else n) 0 applies

let pass =
  Pass.make ~name:"stencil-apply-split"
    ~description:"split multi-result stencil.apply ops into one per result"
    (fun m -> ignore (run_on_module m))

let () = Pass.register pass

(* ------------------------------------------------------------------ *)
(* Fusion (inverse direction) *)

(* Fuse a run of independent single-result applies into one multi-result
   apply over the union of their operands. *)
let fuse_group (applies : Ir.op list) =
  match applies with
  | [] | [ _ ] -> false
  | first :: _ ->
    let parent =
      match Ir.Op.parent first with
      | Some b -> b
      | None -> Err.raise_error "apply-fuse: detached apply"
    in
    let operands =
      List.concat_map Ir.Op.operands applies
      |> List.fold_left
           (fun acc v ->
             if List.exists (Ir.Value.equal v) acc then acc else acc @ [ v ])
           []
    in
    let b = Builder.before parent first in
    let result_elems =
      List.map
        (fun a -> Ty.element (Ir.Value.ty (Ir.Op.result a 0)))
        applies
    in
    let result_tys = List.map (fun a -> Ir.Value.ty (Ir.Op.result a 0)) applies in
    let fused =
      Stencil.apply b ~operands ~result_elems (fun bb args ->
          List.map
            (fun (apply : Ir.op) ->
              let block = Stencil.apply_block apply in
              let term =
                match Ir.Block.terminator block with
                | Some t -> t
                | None -> Err.raise_error "apply-fuse: no terminator"
              in
              let body_ops =
                List.filter
                  (fun o -> not (Ir.Op.equal o term))
                  (Ir.Block.ops block)
              in
              let mapping = Hashtbl.create 32 in
              (* each apply's block args map to the fused block arg of the
                 corresponding operand in the union *)
              List.iteri
                (fun i old_arg ->
                  let operand = Ir.Op.operand apply i in
                  let rec find j = function
                    | [] -> Err.raise_error "apply-fuse: operand not in union"
                    | o :: rest ->
                      if Ir.Value.equal o operand then List.nth args j
                      else find (j + 1) rest
                  in
                  Hashtbl.replace mapping (Ir.Value.id old_arg) (find 0 operands))
                (Ir.Block.args block);
              let mapping = clone_ops bb mapping body_ops in
              match Ir.Op.operands term with
              | [ r ] -> (
                match Hashtbl.find_opt mapping (Ir.Value.id r) with
                | Some nv -> nv
                | None -> r)
              | _ -> Err.raise_error "apply-fuse: expected single result")
            applies)
    in
    List.iteri (fun i ty -> (Ir.Op.result fused i).Ir.v_ty <- ty) result_tys;
    let ba = Ir.Block.args (Stencil.apply_block fused) in
    List.iteri
      (fun ai arg -> arg.Ir.v_ty <- Ir.Value.ty (Ir.Op.operand fused ai))
      ba;
    List.iteri
      (fun i apply -> Ir.replace_op apply [ Ir.Op.result fused i ])
      applies;
    true

(* Find fusable runs in each block: maximal groups of single-result
   applies with equal operand lists where no later apply uses an earlier
   one's result. *)
let run_fuse_on_module (m : Ir.op) =
  let fused = ref 0 in
  let independent group apply =
    let results = List.concat_map Ir.Op.results group in
    List.for_all
      (fun opnd -> not (List.exists (Ir.Value.equal opnd) results))
      (Ir.Op.operands apply)
  in
  let rec scan_block (blk : Ir.block) =
    let applies =
      List.filter
        (fun (o : Ir.op) ->
          Ir.Op.name o = Stencil.apply_op && Ir.Op.num_results o = 1)
        (Ir.Block.ops blk)
    in
    let rec group acc = function
      | [] -> List.rev acc
      | a :: rest -> (
        match acc with
        | g :: gs when independent g a ->
          group ((g @ [ a ]) :: gs) rest
        | _ -> group ([ a ] :: acc) rest)
    in
    let groups = group [] applies in
    let changed = List.exists (fun g -> List.length g > 1) groups in
    if changed then begin
      List.iter (fun g -> if fuse_group g then incr fused) groups;
      scan_block blk
    end
  in
  Ir.Op.walk m (fun op ->
      if Ir.Op.name op = "func.func" then
        List.iter
          (fun r -> List.iter scan_block (Ir.Region.blocks r))
          (Ir.Op.regions op));
  !fused

let fuse_pass =
  Pass.make ~name:"stencil-apply-fuse"
    ~description:"fuse independent same-operand stencil.apply ops"
    (fun m -> ignore (run_fuse_on_module m))

let () = Pass.register fuse_pass
