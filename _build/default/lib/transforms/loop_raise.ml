(* Raising scf/memref loop nests back into the stencil dialect.

   The paper's Figure 1 shows three frontends feeding the stencil
   dialect; for Flang "a transformation has been developed ... that will
   also transform suitable loops into the stencil dialect".  This pass is
   that path's stand-in: it recognises perfect scf.for nests over
   memrefs whose accesses are constant offsets from the induction
   variables — exactly the code shape Fortran stencil loops (and our own
   stencil-to-cpu lowering) produce — and rebuilds stencil
   load/apply/store structure from them, after which the whole
   Stencil-HMLS pipeline applies.

   Like the real raising pass, it is pattern-based and conservative: a
   nest is raised only when
     - it is perfectly nested with constant bounds [0, n_d) and step 1,
     - every memref access index is [iv_d] or [iv_d + c] with constant c,
     - the body is pure arithmetic plus exactly one store, and
     - the offsets stay inside the memref's symmetric padding
       (h_d = (extent_d - n_d) / 2).
   Nests that do not match are left untouched. *)

open Shmls_ir
open Shmls_dialects

type nest = {
  n_loops : Ir.op list; (* outermost first *)
  n_extents : int list;
  n_body : Ir.block; (* innermost loop body *)
}

let const_index_of (v : Ir.value) =
  match Ir.Value.defining_op v with
  | Some op when Ir.Op.name op = Arith.constant_op ->
    Attr.as_int (Ir.Op.get_attr_exn op "value")
  | _ -> None

(* Match a perfect nest of scf.for with bounds [0, n) step 1; the body of
   each outer loop must contain exactly the inner loop (plus its bound
   constants) and a terminator. *)
let rec match_nest (op : Ir.op) : nest option =
  if Ir.Op.name op <> Scf.for_op then None
  else
    match
      ( const_index_of (Ir.Op.operand op 0),
        const_index_of (Ir.Op.operand op 1),
        const_index_of (Ir.Op.operand op 2) )
    with
    | Some 0, Some n, Some 1 -> (
      let body = Ir.Region.entry (List.hd (Ir.Op.regions op)) in
      let real_ops =
        List.filter
          (fun (o : Ir.op) ->
            (not (Ir.Op.is_terminator o)) && Ir.Op.name o <> Arith.constant_op)
          (Ir.Block.ops body)
      in
      match real_ops with
      | [ inner ] when Ir.Op.name inner = Scf.for_op -> (
        match match_nest inner with
        | Some nest ->
          Some
            {
              n_loops = op :: nest.n_loops;
              n_extents = n :: nest.n_extents;
              n_body = nest.n_body;
            }
        | None -> None)
      | _ -> Some { n_loops = [ op ]; n_extents = [ n ]; n_body = body })
    | _ -> None

(* Decompose a memref access index list into per-dimension shifts
   relative to the induction variables (outermost first). *)
let index_shifts ~ivs (indices : Ir.value list) =
  if List.length ivs <> List.length indices then None
  else
    let rec go ivs indices acc =
      match (ivs, indices) with
      | [], [] -> Some (List.rev acc)
      | iv :: ivs', idx :: indices' ->
        if Ir.Value.equal iv idx then go ivs' indices' (0 :: acc)
        else (
          match Ir.Value.defining_op idx with
          | Some op
            when Ir.Op.name op = "arith.addi"
                 && Ir.Value.equal (Ir.Op.operand op 0) iv -> (
            match const_index_of (Ir.Op.operand op 1) with
            | Some c -> go ivs' indices' (c :: acc)
            | None -> None)
          | _ -> None)
      | _ -> None
    in
    go ivs indices []

type raised_access = { ra_memref : Ir.value; ra_offset : int list }

type raised_nest = {
  rn_extents : int list;
  rn_loads : (Ir.op * raised_access) list; (* memref.load op -> access *)
  rn_store : Ir.op * raised_access;
  rn_arith : Ir.op list; (* pure body ops, in order *)
  rn_scalars : Ir.value list; (* outer scalar values the body reads *)
}

(* Halo of a memref relative to the nest extents: symmetric padding. *)
let memref_halo (mr : Ir.value) extents =
  match Ir.Value.ty mr with
  | Ty.Memref (shape, _) when List.length shape = List.length extents ->
    let halos = List.map2 (fun e n -> (e - n) / 2) shape extents in
    if
      List.for_all2
        (fun h (e, n) -> h >= 0 && e = n + (2 * h))
        halos
        (List.combine shape extents)
    then Some halos
    else None
  | _ -> None

(* Analyse one matched nest; None if anything falls outside the raisable
   pattern. *)
let analyse (nest : nest) : raised_nest option =
  let ivs =
    List.map
      (fun loop ->
        Ir.Block.arg (Ir.Region.entry (List.hd (Ir.Op.regions loop))) 0)
      nest.n_loops
  in
  let exception Not_raisable in
  try
    let loads = ref [] in
    let store = ref None in
    let arith = ref [] in
    let scalars = ref [] in
    List.iter
      (fun (op : Ir.op) ->
        match Ir.Op.name op with
        | name when name = Memref.load_op -> (
          let mr = Ir.Op.operand op 0 in
          let indices = List.tl (Ir.Op.operands op) in
          match index_shifts ~ivs indices with
          | Some shifts ->
            loads := (op, { ra_memref = mr; ra_offset = shifts }) :: !loads
          | None -> raise Not_raisable)
        | name when name = Memref.store_op -> (
          if !store <> None then raise Not_raisable;
          let mr = Ir.Op.operand op 1 in
          let indices = List.filteri (fun i _ -> i > 1) (Ir.Op.operands op) in
          (* a value stored straight from outside the nest (e.g. a bare
             scalar parameter) is a free scalar read *)
          let v = Ir.Op.operand op 0 in
          let defined_inside =
            match Ir.Value.owner_block v with
            | Some b -> Ir.Block.equal b nest.n_body
            | None -> false
          in
          if (not defined_inside) && not (Ty.is_index (Ir.Value.ty v)) then
            if not (List.exists (Ir.Value.equal v) !scalars) then
              scalars := v :: !scalars;
          match index_shifts ~ivs indices with
          | Some shifts -> store := Some (op, { ra_memref = mr; ra_offset = shifts })
          | None -> raise Not_raisable)
        | name when name = Arith.constant_op ->
          if
            not
              (List.for_all
                 (fun r -> Ty.is_index (Ir.Value.ty r))
                 (Ir.Op.results op))
          then arith := op :: !arith
        | _
          when List.for_all
                 (fun r -> Ty.is_index (Ir.Value.ty r))
                 (Ir.Op.results op)
               && Ir.Op.results op <> [] ->
          (* address arithmetic (iv + c): consumed by index_shifts *)
          ()
        | name
          when Dialect.has_trait name Dialect.Pure
               && Ir.Op.regions op = [] ->
          arith := op :: !arith;
          (* record reads of values defined outside the nest *)
          List.iter
            (fun v ->
              let defined_inside =
                match Ir.Value.owner_block v with
                | Some b ->
                  List.exists
                    (fun loop ->
                      List.exists
                        (fun (r : Ir.region) ->
                          List.exists (fun blk -> Ir.Block.equal blk b) r.Ir.r_blocks)
                        (Ir.Op.regions loop))
                    nest.n_loops
                | None -> false
              in
              let is_index = Ty.is_index (Ir.Value.ty v) in
              if (not defined_inside) && not is_index then
                if not (List.exists (Ir.Value.equal v) !scalars) then
                  scalars := v :: !scalars)
            (Ir.Op.operands op)
        | _ -> raise Not_raisable)
      (List.filter
         (fun (o : Ir.op) -> not (Ir.Op.is_terminator o))
         (Ir.Block.ops nest.n_body));
    match !store with
    | Some st ->
      Some
        {
          rn_extents = nest.n_extents;
          rn_loads = List.rev !loads;
          rn_store = st;
          rn_arith = List.rev !arith;
          rn_scalars = List.rev !scalars;
        }
    | None -> None
  with Not_raisable -> None

(* ------------------------------------------------------------------ *)
(* Rebuilding the stencil function *)

let raise_func (m_new : Ir.op) (func : Ir.op) =
  let name = Func.sym_name func in
  let old_body = Ir.Region.entry (List.hd (Ir.Op.regions func)) in
  let old_args = Ir.Block.args old_body in
  (* collect the raisable nests in order; give up (copy nothing) if any
     top-level op is not a raisable nest or a bound constant *)
  let nests =
    List.filter_map
      (fun (op : Ir.op) ->
        match match_nest op with
        | Some nest -> (
          match analyse nest with Some rn -> Some (op, rn) | None -> None)
        | None -> None)
      (Ir.Block.ops old_body)
  in
  let raisable =
    nests <> []
    && List.for_all
         (fun (op : Ir.op) ->
           Ir.Op.name op = Arith.constant_op
           || Ir.Op.name op = Memref.alloc_op
           || Ir.Op.name op = Memref.alloca_op
           || Ir.Op.is_terminator op
           || List.exists (fun (n, _) -> Ir.Op.equal n op) nests)
         (Ir.Block.ops old_body)
  in
  if not raisable then None
  else begin
    (* every raised nest must agree on the interior extents *)
    let extents = (snd (List.hd nests)).rn_extents in
    if List.exists (fun (_, rn) -> rn.rn_extents <> extents) nests then None
    else begin
      (* halo per memref argument: symmetric padding against the extents;
         every accessed memref must be an argument (no intermediates in
         the single-stencil pattern we raise) *)
      let halo_of = Hashtbl.create 8 in
      let ok = ref true in
      List.iter
        (fun (_, rn) ->
          List.iter
            (fun (_, (ra : raised_access)) ->
              match memref_halo ra.ra_memref extents with
              | Some h -> Hashtbl.replace halo_of (Ir.Value.id ra.ra_memref) h
              | None -> ok := false)
            (rn.rn_loads @ [ rn.rn_store ]))
        nests;
      if not !ok then None
      else begin
        (* the raised fields share the kernel-wide halo *)
        let halo =
          List.mapi
            (fun d _ ->
              Hashtbl.fold (fun _ h acc -> max acc (List.nth h d)) halo_of 0)
            extents
        in
        let new_arg_tys =
          List.map
            (fun arg ->
              match Ir.Value.ty arg with
              | Ty.Memref (_, elem) ->
                Ty.Field
                  ( Ty.make_bounds
                      ~lb:(List.map (fun h -> -h) halo)
                      ~ub:(List.map2 ( + ) extents halo),
                    elem )
              | t -> t)
            old_args
        in
        let func' =
          Func.build_func m_new ~name ~arg_tys:new_arg_tys ~result_tys:[]
            (fun b new_args ->
              let map_arg v =
                let rec go olds news =
                  match (olds, news) with
                  | o :: _, n :: _ when Ir.Value.equal o v -> Some n
                  | _ :: olds', _ :: news' -> go olds' news'
                  | _ -> None
                in
                go old_args new_args
              in
              (* one stencil.load per memref argument that is read;
                 alloc-backed memrefs resolve to the producing nest's
                 apply result as the raising proceeds *)
              let temps = Hashtbl.create 8 in
              List.iter
                (fun (_, rn) ->
                  List.iter
                    (fun (_, (ra : raised_access)) ->
                      let id = Ir.Value.id ra.ra_memref in
                      if not (Hashtbl.mem temps id) then
                        match map_arg ra.ra_memref with
                        | Some field ->
                          Hashtbl.replace temps id (Stencil.load b field)
                        | None -> () (* an intermediate: bound by its nest *))
                    rn.rn_loads)
                nests;
              List.iter
                (fun (_, rn) ->
                  let load_accesses = rn.rn_loads in
                  let operand_memrefs =
                    List.fold_left
                      (fun acc (_, (ra : raised_access)) ->
                        if List.exists (fun v -> Ir.Value.equal v ra.ra_memref) acc
                        then acc
                        else acc @ [ ra.ra_memref ])
                      [] load_accesses
                  in
                  let operands =
                    List.map
                      (fun mr ->
                        match Hashtbl.find_opt temps (Ir.Value.id mr) with
                        | Some t -> t
                        | None ->
                          Err.raise_error
                            "loop-raise: read of a temp before its producer")
                      operand_memrefs
                    @ List.map
                        (fun v ->
                          match map_arg v with Some nv -> nv | None -> v)
                        rn.rn_scalars
                  in
                  let apply =
                    Stencil.apply b ~operands ~result_elems:[ Ty.F64 ]
                      (fun bb args ->
                        let arg_of_memref mr =
                          let rec go mrs args =
                            match (mrs, args) with
                            | m :: _, a :: _ when Ir.Value.equal m mr -> a
                            | _ :: mrs', _ :: args' -> go mrs' args'
                            | _ ->
                              Err.raise_error "loop-raise: memref arg lost"
                          in
                          go operand_memrefs args
                        in
                        let scalar_args =
                          List.filteri
                            (fun i _ -> i >= List.length operand_memrefs)
                            args
                        in
                        let mapping = Hashtbl.create 32 in
                        List.iter2
                          (fun old_scalar new_arg ->
                            Hashtbl.replace mapping (Ir.Value.id old_scalar) new_arg)
                          rn.rn_scalars scalar_args;
                        (* loads become accesses *)
                        List.iter
                          (fun ((ld : Ir.op), (ra : raised_access)) ->
                            let h =
                              Hashtbl.find halo_of (Ir.Value.id ra.ra_memref)
                            in
                            let offset = List.map2 (fun c hh -> c - hh) ra.ra_offset h in
                            let v =
                              Stencil.access bb
                                (arg_of_memref ra.ra_memref)
                                ~offset
                            in
                            Hashtbl.replace mapping
                              (Ir.Value.id (Ir.Op.result ld 0))
                              v)
                          load_accesses;
                        let remap v =
                          match Hashtbl.find_opt mapping (Ir.Value.id v) with
                          | Some nv -> nv
                          | None -> v
                        in
                        (* clone the arithmetic *)
                        List.iter
                          (fun (op : Ir.op) ->
                            let cloned =
                              Builder.insert_op bb ~name:(Ir.Op.name op)
                                ~operands:(List.map remap (Ir.Op.operands op))
                                ~result_tys:
                                  (List.map Ir.Value.ty (Ir.Op.results op))
                                ~attrs:(Ir.Op.attrs op) ()
                            in
                            List.iteri
                              (fun i r ->
                                Hashtbl.replace mapping (Ir.Value.id r)
                                  (Ir.Op.result cloned i))
                              (Ir.Op.results op))
                          rn.rn_arith;
                        let store_op, _ = rn.rn_store in
                        [ remap (Ir.Op.operand store_op 0) ])
                  in
                  (* arguments get a store over the interior; alloc-backed
                     targets become intermediates feeding later nests *)
                  let _, (store_ra : raised_access) = rn.rn_store in
                  (match map_arg store_ra.ra_memref with
                  | Some dst ->
                    Stencil.store b (Ir.Op.result apply 0) dst
                      ~lb:(List.map (fun _ -> 0) extents)
                      ~ub:extents
                  | None -> ());
                  Hashtbl.replace temps
                    (Ir.Value.id store_ra.ra_memref)
                    (Ir.Op.result apply 0))
                nests;
              Func.return_ b [])
        in
        Some func'
      end
    end
  end

(* Raise every recognisable function into a fresh module; unraisable
   functions are skipped. Returns the new module and how many functions
   were raised. *)
let run (m : Ir.op) =
  let m_new = Ir.Module_.create () in
  let raised =
    List.fold_left
      (fun n f -> match raise_func m_new f with Some _ -> n + 1 | None -> n)
      0 (Ir.Module_.funcs m)
  in
  (m_new, raised)

let pass =
  Pass.make ~name:"raise-to-stencil"
    ~description:"raise suitable scf/memref loop nests into the stencil dialect"
    (fun m ->
      let m_new, _ = run m in
      let body = Ir.Module_.body m in
      List.iter
        (fun op ->
          Ir.Op.walk op (fun o ->
              Array.iteri
                (fun i v -> Ir.Value.remove_use v ~op:o ~index:i)
                o.Ir.o_operands);
          Ir.Op.detach op)
        (Ir.Block.ops body);
      List.iter
        (fun op ->
          Ir.Op.detach op;
          Ir.Block.append body op)
        (Ir.Module_.ops m_new))

let () = Pass.register pass
