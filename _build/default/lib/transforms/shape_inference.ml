(* Stencil shape inference.

   The frontend emits stencil.temp values without bounds; this pass
   propagates concrete bounds backwards from stencil.store ops (whose lb/ub
   attrs give the written region) through stencil.apply ops (expanding by
   the access offsets used on each argument) to stencil.load ops (clipped
   against the field's declared bounds).  After this pass every temp type
   is Temp (Some bounds, _), which the interpreter, the CPU lowering and
   the HLS lowering all rely on.

   This mirrors the xDSL stencil-shape-inference pass; the paper's future
   work discusses replacing these static shapes with dynamic ones. *)

open Shmls_ir
open Shmls_dialects

let union_bounds (a : Ty.bounds) (b : Ty.bounds) =
  if Ty.bounds_rank a <> Ty.bounds_rank b then
    Err.raise_error "shape inference: rank mismatch in bounds union";
  {
    Ty.lb = List.map2 min a.lb b.lb;
    ub = List.map2 max a.ub b.ub;
  }

(* Expand [b] so that accessing it at every offset in [offsets] stays
   within bounds when the result ranges over [b].  Each offset expands
   the *original* bounds (offsets are alternatives, not a composition). *)
let expand_by_offsets (b : Ty.bounds) offsets =
  List.fold_left
    (fun (acc : Ty.bounds) offset ->
      {
        Ty.lb = List.map2 min acc.lb (List.map2 ( + ) b.lb offset);
        ub = List.map2 max acc.ub (List.map2 ( + ) b.ub offset);
      })
    b offsets

(* Required bounds for each apply operand, given the apply result bounds
   and the accesses performed on the corresponding block argument. *)
let operand_requirements (apply : Ir.op) (result_bounds : Ty.bounds) =
  let block = Stencil.apply_block apply in
  List.mapi
    (fun i arg ->
      match Ir.Value.ty arg with
      | Ty.Temp (_, _) ->
        let accesses =
          Ir.Op.collect apply (fun o ->
              (Ir.Op.name o = Stencil.access_op
              || Ir.Op.name o = Stencil.dyn_access_op)
              && Ir.Value.equal (Ir.Op.operand o 0) arg)
        in
        let const_offsets =
          List.filter_map
            (fun o ->
              if Ir.Op.name o = Stencil.access_op then
                Some (Stencil.access_offset o)
              else None)
            accesses
        in
        let has_dyn =
          List.exists (fun o -> Ir.Op.name o = Stencil.dyn_access_op) accesses
        in
        if has_dyn then Some (i, `Full)
        else if const_offsets = [] then None
        else Some (i, `Bounds (expand_by_offsets result_bounds const_offsets))
      | _ -> None)
    (Ir.Block.args block)
  |> List.filter_map Fun.id

let field_bounds v =
  match Ir.Value.ty v with
  | Ty.Field (b, _) -> b
  | t -> Err.raise_error "shape inference: expected field, got %s" (Ty.to_string t)

let run_on_func (func : Ir.op) =
  let body = Ir.Region.entry (List.hd (Ir.Op.regions func)) in
  let requirements : (int, Ty.bounds) Hashtbl.t = Hashtbl.create 32 in
  let full : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let require v bounds =
    match Hashtbl.find_opt requirements (Ir.Value.id v) with
    | Some existing ->
      Hashtbl.replace requirements (Ir.Value.id v) (union_bounds existing bounds)
    | None -> Hashtbl.replace requirements (Ir.Value.id v) bounds
  in
  (* Backward pass: collect requirements. *)
  List.iter
    (fun (op : Ir.op) ->
      match Ir.Op.name op with
      | name when name = Stencil.store_op ->
        require (Ir.Op.operand op 0) (Stencil.store_bounds op)
      | name when name = Stencil.apply_op ->
        let result_bounds =
          List.fold_left
            (fun acc res ->
              match Hashtbl.find_opt requirements (Ir.Value.id res) with
              | Some b -> (
                match acc with
                | Some existing -> Some (union_bounds existing b)
                | None -> Some b)
              | None -> acc)
            None (Ir.Op.results op)
        in
        (match result_bounds with
        | None ->
          Err.raise_error
            "shape inference: apply result has no consumers with bounds"
        | Some rb ->
          List.iter
            (fun res -> require res rb)
            (Ir.Op.results op);
          List.iter
            (fun (i, req) ->
              let operand = Ir.Op.operand op i in
              match req with
              | `Full -> Hashtbl.replace full (Ir.Value.id operand) ()
              | `Bounds b -> require operand b)
            (operand_requirements op rb))
      | _ -> ())
    (List.rev (Ir.Block.ops body));
  (* Forward pass: assign inferred types. *)
  List.iter
    (fun (op : Ir.op) ->
      match Ir.Op.name op with
      | name when name = Stencil.load_op ->
        let field = Ir.Op.operand op 0 in
        let result = Ir.Op.result op 0 in
        let fb = field_bounds field in
        let inferred =
          if Hashtbl.mem full (Ir.Value.id result) then fb
          else
            match Hashtbl.find_opt requirements (Ir.Value.id result) with
            | Some b -> b
            | None ->
              Err.raise_error "shape inference: unused stencil.load result"
        in
        (* clip against the field's declared bounds *)
        List.iter2
          (fun req avail ->
            if req < avail then
              Err.raise_error
                "shape inference: required lower bound %d below field bound %d"
                req avail)
          inferred.Ty.lb fb.Ty.lb;
        List.iter2
          (fun req avail ->
            if req > avail then
              Err.raise_error
                "shape inference: required upper bound %d above field bound %d"
                req avail)
          inferred.Ty.ub fb.Ty.ub;
        let elem = Ty.element (Ir.Value.ty result) in
        result.Ir.v_ty <- Ty.Temp (Some inferred, elem)
      | name when name = Stencil.apply_op ->
        List.iter
          (fun res ->
            match Hashtbl.find_opt requirements (Ir.Value.id res) with
            | Some b ->
              res.Ir.v_ty <- Ty.Temp (Some b, Ty.element (Ir.Value.ty res))
            | None -> ())
          (Ir.Op.results op);
        (* region block args mirror operand types *)
        let block = Stencil.apply_block op in
        List.iteri
          (fun i arg -> arg.Ir.v_ty <- Ir.Value.ty (Ir.Op.operand op i))
          (Ir.Block.args block)
      | _ -> ())
    (Ir.Block.ops body)

let run_on_module (m : Ir.op) = List.iter run_on_func (Ir.Module_.funcs m)

let pass =
  Pass.make ~name:"stencil-shape-inference"
    ~description:"assign static bounds to every stencil.temp"
    run_on_module

let () = Pass.register pass
