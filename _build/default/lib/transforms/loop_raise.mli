(** Raising scf/memref loop nests back into the stencil dialect — the
    stand-in for the paper's Flang path ("a transformation ... that will
    also transform suitable loops into the stencil dialect").

    Pattern-based and conservative: perfect constant-bound nests whose
    memref accesses are constant offsets from the induction variables,
    with pure arithmetic and a single store, raise to
    load/apply/store; anything else is skipped. *)

open Shmls_ir

(** Raise one function into [m_new]; [None] if it does not match. *)
val raise_func : Ir.op -> Ir.op -> Ir.op option

(** Raise every recognisable function into a fresh module; returns the
    module and the number of functions raised. *)
val run : Ir.op -> Ir.op * int

(** In-place variant, registered as "raise-to-stencil". *)
val pass : Pass.t
