(** The Stencil-HMLS transformation (contribution (2) of the paper): the
    nine steps of Section 3.3, rewriting shape-inferred single-result
    stencil kernels into the load / shift-buffer / duplicate / compute /
    write dataflow form of Figure 3, in the HLS dialect.

    Stream convention: every stream carries one element per padded grid
    position in row-major order; boundary positions flow through and are
    dropped by write_data, so all stages advance in lock-step at II=1. *)

open Shmls_ir

(** The U280 shell's AXI port limit used for the CU-count plan. *)
val max_axi_ports : int

(** Guard band on BRAM copies of small data (edge-clamped). *)
val small_guard : int

type arg_class =
  | Field_input
  | Field_output
  | Field_inout
  | Small_constant
  | Scalar_constant

(** Step 1: classify the kernel arguments. *)
val classify_args : Ir.op -> (Ir.value * arg_class) list

(** Neighbourhood size for a per-dimension halo: [(2h+1)^rank]. *)
val nb_size : int list -> int

(** Row-major position of an offset inside the neighbourhood cube;
    raises if the offset exceeds the halo. *)
val nb_index : int list -> int list -> int

type plan = {
  p_kernel_name : string;
  p_rank : int;
  p_grid : int list;
  p_field_halo : int list;
  p_ports_per_cu : int;
  p_cu : int;
  p_n_inputs : int;
  p_n_outputs : int;
  p_n_smalls : int;
}

(** Transform one kernel function into [m_new]; returns the port/CU plan
    and the generated function (tagged with [hls_kernel], [cu], [grid],
    [field_halo] attributes). *)
val transform_func : Ir.op -> Ir.op -> plan * Ir.op

(** Transform every kernel of a module into a fresh module. *)
val run : Ir.op -> Ir.op * (plan * Ir.op) list

(** In-place variant, registered as "stencil-to-hls". *)
val pass : Pass.t
