(** Splitting and fusing of stencil.apply ops (step 4 of the
    transformation works on single-result applies; CPU pipelines prefer
    the fused form). *)

open Shmls_ir

(** Split one multi-result apply into one apply per result (backward
    slice per returned value); [false] if it was already single-result. *)
val split_one : Ir.op -> bool

(** Split every multi-result apply in the module; returns the count. *)
val run_on_module : Ir.op -> int

val pass : Pass.t

(** Fuse runs of mutually independent single-result applies into one
    multi-result apply over the union of their operands; returns the
    number of fusions performed. *)
val run_fuse_on_module : Ir.op -> int

val fuse_pass : Pass.t
