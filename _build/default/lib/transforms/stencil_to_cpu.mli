(** Lowering from the stencil dialect to scf/memref loop nests: the CPU
    path, and the code shape the naive Vitis HLS baseline synthesises.
    Field arguments become memrefs of the same extents (indices shifted
    by the field's lower bound). Requires shape-inferred input. *)

open Shmls_ir

(** Lower every function into a fresh module; the input is left intact. *)
val run : Ir.op -> Ir.op

(** In-place variant, registered as "stencil-to-cpu". *)
val pass : Pass.t
