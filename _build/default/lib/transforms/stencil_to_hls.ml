(* The Stencil-HMLS transformation: stencil dialect -> HLS dialect.
   Contribution (2) of the paper; the nine steps of Section 3.3.

   Given a shape-inferred module of single-result stencil.apply ops, each
   kernel function is rewritten into the dataflow form of the paper's
   Figure 3:

     load_data -> shift_buffer(f) -> duplicate(f) -> compute(s) -> write_data

   Steps (numbers as in the paper):
     1. classify kernel arguments (stencil inputs / outputs / constants)
     2. replace interface types with 512-bit packed versions
        (f64 -> !llvm.ptr<!llvm.struct<(!llvm.array<8 x f64>)>>)
     3. replace direct external-memory accesses by streams feeding shift
        buffers (one load_data stage; one shift_buffer stage per input)
     4. separate stencil fields: one concurrent compute stage per
        (already split) stencil.apply
     5. map stencil.access offsets onto the shift buffer's neighbourhood
        vector ((2h+1)^d values: 3 in 1D, 9 in 2D, 27 in 3D for halo 1)
     6. replace stencil.store ops by a single write_data stage that packs
        512-bit chunks
     7. de-duplicate placeholder loads: a single load_data call
        specialised for the number of input fields
     8. copy small data (1D coefficient arrays) into local BRAM inside
        each consuming compute stage, partitioned
     9. assign each field argument to its own AXI4 bundle / HBM bank;
        small data shares one bundle

   Stream convention: every stream carries one element per *padded* grid
   position in row-major order (boundary positions flow through and are
   dropped by write_data), so all stages advance in lock-step with II=1.

   The compute-unit replication factor implied by the port budget (32
   AXI4 ports on the U280 shell; PW advection: 7 ports/CU -> 4 CUs,
   tracer advection: 17 ports/CU -> 1 CU) is recorded as attributes on
   the generated function; as in the paper, replication happens at link
   time, not in the kernel IR. *)

open Shmls_ir
open Shmls_dialects

(* U280 shell limit used in the paper's CU-count reasoning. *)
let max_axi_ports = 32

let depth_external = 64
let depth_internal = 4

let packed_field_ty = Ty.Ptr (Ty.Struct [ Ty.Array (8, Ty.F64) ])
let small_ptr_ty = Ty.Ptr Ty.F64

(* Guard band on BRAM copies of small data so that index arithmetic at
   padded-boundary positions stays in range (values are edge-clamped). *)
let small_guard = 2

(* ------------------------------------------------------------------ *)
(* Step 1: argument classification *)

type arg_class =
  | Field_input
  | Field_output
  | Field_inout
  | Small_constant
  | Scalar_constant

let classify_args (func : Ir.op) =
  let body = Ir.Region.entry (List.hd (Ir.Op.regions func)) in
  List.map
    (fun arg ->
      match Ir.Value.ty arg with
      | Ty.Field (b, _) when Ty.bounds_rank b = 1 -> (
        (* 1D fields whose loaded temps are only dyn_accessed are small
           coefficient data *)
        let loads =
          List.filter
            (fun (u : Ir.use) -> Ir.Op.name u.u_op = Stencil.load_op)
            (Ir.Value.uses arg)
        in
        (* consumed exclusively through stencil.dyn_access
           (position-indexed coefficient lookups) -> small constant data;
           1D fields read with stencil.access are ordinary grids of a
           rank-1 kernel *)
        let dyn_only_in_apply (u : Ir.use) =
          Ir.Op.name u.u_op = Stencil.apply_op
          &&
          let block_arg = Ir.Block.arg (Stencil.apply_block u.u_op) u.u_index in
          Ir.Value.uses block_arg
          |> List.for_all (fun (u2 : Ir.use) ->
                 Ir.Op.name u2.u_op = Stencil.dyn_access_op)
        in
        let reads_dyn_only =
          loads <> []
          && List.for_all
               (fun (u : Ir.use) ->
                 let temp = Ir.Op.result u.u_op 0 in
                 Ir.Value.uses temp |> List.for_all dyn_only_in_apply)
               loads
        in
        if reads_dyn_only then (arg, Small_constant) else (arg, Field_input))
      | Ty.Field _ ->
        let read =
          List.exists
            (fun (u : Ir.use) -> Ir.Op.name u.u_op = Stencil.load_op)
            (Ir.Value.uses arg)
        in
        let written =
          List.exists
            (fun (u : Ir.use) ->
              Ir.Op.name u.u_op = Stencil.store_op && u.u_index = 1)
            (Ir.Value.uses arg)
        in
        (match (read, written) with
        | true, true -> (arg, Field_inout)
        | false, true -> (arg, Field_output)
        | _, _ -> (arg, Field_input))
      | _ -> (arg, Scalar_constant))
    (Ir.Block.args body)

(* ------------------------------------------------------------------ *)
(* Neighbourhood geometry (step 5) *)

let nb_size halo = List.fold_left (fun acc h -> acc * ((2 * h) + 1)) 1 halo

(* Row-major linear position of [offset] within the neighbourhood cube. *)
let nb_index halo offset =
  List.fold_left2
    (fun acc h o ->
      if abs o > h then
        Err.raise_error "stencil-to-hls: offset %d exceeds halo %d" o h;
      (acc * ((2 * h) + 1)) + (o + h))
    0 halo offset

(* Per-source halo: max |offset| per dimension over every stencil.access
   of any apply argument bound to [source]. *)
let source_halo (func : Ir.op) (source : Ir.value) rank =
  let h = Array.make rank 0 in
  Ir.Op.walk func (fun op ->
      if Ir.Op.name op = Stencil.apply_op then
        List.iteri
          (fun i operand ->
            if Ir.Value.equal operand source then
              let arg = Ir.Block.arg (Stencil.apply_block op) i in
              List.iter
                (fun (acc : Ir.op) ->
                  if Ir.Op.name acc = Stencil.access_op then
                    List.iteri
                      (fun d o -> h.(d) <- max h.(d) (abs o))
                      (Stencil.access_offset acc))
                (Stencil.accesses_of_arg op arg))
          (Ir.Op.operands op));
  Array.to_list h

(* ------------------------------------------------------------------ *)
(* The transformation plan *)

type plan = {
  p_kernel_name : string;
  p_rank : int;
  p_grid : int list;
  p_field_halo : int list;
  p_ports_per_cu : int;
  p_cu : int;
  p_n_inputs : int;
  p_n_outputs : int;
  p_n_smalls : int;
}

let make_plan (func : Ir.op) classes =
  let name = Func.sym_name func in
  let fb =
    match
      List.find_map
        (fun (arg, cls) ->
          match (cls, Ir.Value.ty arg) with
          | (Field_input | Field_output | Field_inout), Ty.Field (b, _) ->
            Some b
          | _ -> None)
        classes
    with
    | Some b -> b
    | None -> Err.raise_error "stencil-to-hls: kernel has no field arguments"
  in
  let rank = Ty.bounds_rank fb in
  let store =
    match Ir.Op.collect func (fun o -> Ir.Op.name o = Stencil.store_op) with
    | s :: _ -> s
    | [] -> Err.raise_error "stencil-to-hls: kernel stores nothing"
  in
  let interior = Stencil.store_bounds store in
  let grid = Ty.bounds_extent interior in
  let field_halo =
    List.map2 (fun l il -> abs (il - l)) fb.Ty.lb interior.Ty.lb
  in
  let count p = List.length (List.filter (fun (_, c) -> p c) classes) in
  let n_fields =
    count (function
      | Field_input | Field_output | Field_inout -> true
      | Small_constant | Scalar_constant -> false)
  in
  let n_smalls = count (fun c -> c = Small_constant) in
  let ports = n_fields + if n_smalls = 0 then 0 else 1 in
  {
    p_kernel_name = name;
    p_rank = rank;
    p_grid = grid;
    p_field_halo = field_halo;
    p_ports_per_cu = ports;
    p_cu = max 1 (max_axi_ports / ports);
    p_n_inputs = count (fun c -> c = Field_input || c = Field_inout);
    p_n_outputs = count (fun c -> c = Field_output || c = Field_inout);
    p_n_smalls = n_smalls;
  }

(* ------------------------------------------------------------------ *)
(* Stream boxes: a stream plus its expected readers; hands out duplicate
   copies when more than one stage reads it. *)

type box = {
  bx_main : Ir.value;
  bx_copies : Ir.value list;
  mutable bx_next : int;
}

let make_box b ~elem ~depth ~readers =
  let main = Hls.create_stream b ~depth ~elem () in
  let copies =
    if readers > 1 then
      List.init readers (fun _ -> Hls.create_stream b ~depth ~elem ())
    else []
  in
  { bx_main = main; bx_copies = copies; bx_next = 0 }

let take box =
  match box.bx_copies with
  | [] -> box.bx_main
  | copies ->
    if box.bx_next >= List.length copies then
      Err.raise_error "stencil-to-hls: stream over-subscribed";
    let c = List.nth copies box.bx_next in
    box.bx_next <- box.bx_next + 1;
    c

(* ------------------------------------------------------------------ *)
(* Source bookkeeping *)

type source = {
  so_name : string;
  so_halo : int list;
  so_is_field : bool;
  so_apply_readers : int;
  so_store_readers : int;
  so_has_shift : bool;
  mutable so_value : box option; (* f64 elements *)
  mutable so_shift : box option; (* neighbourhood vectors *)
}

(* ------------------------------------------------------------------ *)
(* Compute-stage body generation (steps 4, 5) *)

let recover_indices b ~iv ~padded_extent =
  let rec go idx remaining =
    match remaining with
    | [] -> []
    | [ _ ] -> [ idx ]
    | _ :: rest ->
      let tail = List.fold_left ( * ) 1 rest in
      let c = Arith.constant_index b tail in
      let q = Arith.divsi b idx c in
      let r = Arith.remsi b idx c in
      q :: go r rest
  in
  go iv padded_extent

type compute_input =
  | From_shift of Ir.value * int list
  | From_value of Ir.value
  | From_small of Ir.value (* local BRAM memref (guard-shifted) *)
  | From_scalar of Ir.value

let contains_index_ops (apply : Ir.op) =
  Ir.Op.collect apply (fun o -> Ir.Op.name o = Stencil.index_op) <> []

(* Emit the pipelined stream loop implementing one stencil.apply. *)
let build_compute_body db ~grid ~field_halo ~apply ~inputs ~out_stream =
  let padded_extent = List.map2 (fun g h -> g + (2 * h)) grid field_halo in
  let total = List.fold_left ( * ) 1 padded_extent in
  let lb = Arith.constant_index db 0 in
  let ub = Arith.constant_index db total in
  let step = Arith.constant_index db 1 in
  ignore
    (Scf.for_ db ~lb ~ub ~step (fun fb iv ->
         Hls.pipeline fb ~ii:1;
         let needs_indices =
           List.exists
             (fun (_, i) -> match i with From_small _ -> true | _ -> false)
             inputs
           || contains_index_ops apply
         in
         let indices =
           if needs_indices then recover_indices fb ~iv ~padded_extent else []
         in
         let read_values =
           List.map
             (fun (arg, input) ->
               match input with
               | From_shift (stream, halo) -> (arg, `Nb (Hls.read fb stream, halo))
               | From_value stream -> (arg, `Val (Hls.read fb stream))
               | From_small local -> (arg, `Small local)
               | From_scalar v -> (arg, `Val v))
             inputs
         in
         let mapping : (int, Ir.value) Hashtbl.t = Hashtbl.create 32 in
         (* scalar params and value-stream elements substitute directly for
            their block arguments; neighbourhood/small args only flow
            through stencil.access / stencil.dyn_access *)
         List.iter
           (fun (arg, rv) ->
             match rv with
             | `Val v -> Hashtbl.replace mapping (Ir.Value.id arg) v
             | `Nb _ | `Small _ -> ())
           read_values;
         let remap v =
           match Hashtbl.find_opt mapping (Ir.Value.id v) with
           | Some nv -> nv
           | None -> v
         in
         let lookup_arg a =
           List.find_map
             (fun (arg, rv) -> if Ir.Value.equal arg a then Some rv else None)
             read_values
         in
         let block = Stencil.apply_block apply in
         List.iter
           (fun (op : Ir.op) ->
             match Ir.Op.name op with
             | name when name = Stencil.access_op -> (
               match lookup_arg (Ir.Op.operand op 0) with
               | Some (`Nb (nb, halo)) ->
                 let pos = nb_index halo (Stencil.access_offset op) in
                 let v =
                   Builder.insert_op1 fb ~name:Llvm_d.extractvalue_op
                     ~operands:[ nb ] ~result_ty:Ty.F64
                     ~attrs:[ ("indices", Attr.Ints [ pos ]) ]
                     ()
                 in
                 Hashtbl.replace mapping (Ir.Value.id (Ir.Op.result op 0)) v
               | Some (`Val v) ->
                 if List.exists (fun o -> o <> 0) (Stencil.access_offset op)
                 then
                   Err.raise_error
                     "stencil-to-hls: offset access of a value stream";
                 Hashtbl.replace mapping (Ir.Value.id (Ir.Op.result op 0)) v
               | Some (`Small _) | None ->
                 Err.raise_error "stencil-to-hls: access of unexpected source")
             | name when name = Stencil.dyn_access_op -> (
               match lookup_arg (Ir.Op.operand op 0) with
               | Some (`Small local) ->
                 (* recognise idx = stencil.index(dim) [+ const] *)
                 let axis, offset =
                   let idx_operand = Ir.Op.operand op 1 in
                   match Ir.Value.defining_op idx_operand with
                   | Some d when Ir.Op.name d = Stencil.index_op ->
                     (Attr.int_exn (Ir.Op.get_attr_exn d "dim"), 0)
                   | Some d when Ir.Op.name d = "arith.addi" -> (
                     let a = Ir.Op.operand d 0 and c = Ir.Op.operand d 1 in
                     match (Ir.Value.defining_op a, Ir.Value.defining_op c) with
                     | Some da, Some dc
                       when Ir.Op.name da = Stencil.index_op
                            && Ir.Op.name dc = "arith.constant" ->
                       ( Attr.int_exn (Ir.Op.get_attr_exn da "dim"),
                         Attr.int_exn (Ir.Op.get_attr_exn dc "value") )
                     | _ ->
                       Err.raise_error
                         "stencil-to-hls: unsupported dyn_access index form")
                   | _ ->
                     Err.raise_error
                       "stencil-to-hls: unsupported dyn_access index form"
                 in
                 (* padded position along the axis == zero-based local
                    index; the guard band absorbs the offset *)
                 let pos = List.nth indices axis in
                 let shifted =
                   if offset + small_guard = 0 then pos
                   else
                     Arith.addi fb pos
                       (Arith.constant_index fb (offset + small_guard))
                 in
                 let v = Memref.load fb local [ shifted ] in
                 Hashtbl.replace mapping (Ir.Value.id (Ir.Op.result op 0)) v
               | _ ->
                 Err.raise_error "stencil-to-hls: dyn_access of non-small data")
             | name when name = Stencil.index_op ->
               Hashtbl.replace mapping
                 (Ir.Value.id (Ir.Op.result op 0))
                 (List.nth indices (Attr.int_exn (Ir.Op.get_attr_exn op "dim")))
             | name when name = Stencil.return_op -> (
               match Ir.Op.operands op with
               | [ r ] -> Hls.write fb (remap r) out_stream
               | _ ->
                 Err.raise_error
                   "stencil-to-hls: multi-result apply (run apply-split)")
             | _ ->
               let cloned =
                 Builder.insert_op fb ~name:(Ir.Op.name op)
                   ~operands:(List.map remap (Ir.Op.operands op))
                   ~result_tys:(List.map Ir.Value.ty (Ir.Op.results op))
                   ~attrs:(Ir.Op.attrs op) ()
               in
               List.iteri
                 (fun i r ->
                   Hashtbl.replace mapping (Ir.Value.id r) (Ir.Op.result cloned i))
                 (Ir.Op.results op))
           (Ir.Block.ops block)))

(* Step 8: emit the BRAM copy of one small array inside a compute stage;
   returns the local memref. *)
let emit_small_copy db ~(small_arg : Ir.value) ~(new_arg : Ir.value) =
  let ext =
    match Ir.Value.ty small_arg with
    | Ty.Field (b, _) -> List.hd (Ty.bounds_extent b)
    | _ -> Err.raise_error "stencil-to-hls: small argument is not a 1D field"
  in
  let local_extent = ext + (2 * small_guard) in
  let local = Memref.alloca db ~shape:[ local_extent ] ~elem:Ty.F64 in
  Hls.array_partition db ~kind:"cyclic" ~factor:2 ~dim:0 local;
  let lb = Arith.constant_index db 0 in
  let ub = Arith.constant_index db local_extent in
  let step = Arith.constant_index db 1 in
  ignore
    (Scf.for_ db ~lb ~ub ~step (fun fb iv ->
         Hls.pipeline fb ~ii:1;
         (* clamp source index into [0, ext) across the guard band *)
         let shifted = Arith.subi fb iv (Arith.constant_index fb small_guard) in
         let zero = Arith.constant_index fb 0 in
         let maxi = Arith.constant_index fb (ext - 1) in
         let lt = Arith.cmpi fb ~predicate:"slt" shifted zero in
         let clamped0 = Arith.select fb lt zero shifted in
         let gt = Arith.cmpi fb ~predicate:"sgt" clamped0 maxi in
         let clamped = Arith.select fb gt maxi clamped0 in
         let p =
           Builder.insert_op1 fb ~name:Llvm_d.gep_op
             ~operands:[ new_arg; clamped ] ~result_ty:small_ptr_ty
             ~attrs:[ ("indices", Attr.Ints []) ]
             ()
         in
         let v = Llvm_d.load fb p in
         Memref.store fb v local [ iv ]));
  local

(* ------------------------------------------------------------------ *)
(* Per-function driver *)

let ints l = Attr.Ints l

let transform_func (m_new : Ir.op) (func : Ir.op) =
  let classes = classify_args func in
  let plan = make_plan func classes in
  let rank = plan.p_rank in
  let padded_extent =
    List.map2 (fun g h -> g + (2 * h)) plan.p_grid plan.p_field_halo
  in
  let total_padded = List.fold_left ( * ) 1 padded_extent in
  let applies = Ir.Op.collect func (fun o -> Ir.Op.name o = Stencil.apply_op) in
  List.iter
    (fun (a : Ir.op) ->
      if Ir.Op.num_results a <> 1 then
        Err.raise_error
          "stencil-to-hls: multi-result apply present (run stencil-apply-split)")
    applies;
  let old_body = Ir.Region.entry (List.hd (Ir.Op.regions func)) in
  let stores =
    List.filter
      (fun (o : Ir.op) -> Ir.Op.name o = Stencil.store_op)
      (Ir.Block.ops old_body)
  in
  let load_ops =
    List.filter
      (fun (o : Ir.op) -> Ir.Op.name o = Stencil.load_op)
      (Ir.Block.ops old_body)
  in
  let class_of arg =
    match List.find_opt (fun (a, _) -> Ir.Value.equal a arg) classes with
    | Some (_, c) -> c
    | None -> Err.raise_error "stencil-to-hls: unknown argument"
  in
  (* ---- build the source table ---- *)
  let sources : (int * source) list ref = ref [] in
  let get_source v = List.assoc_opt (Ir.Value.id v) !sources in
  let add_source v so = sources := (Ir.Value.id v, so) :: !sources in
  let field_loads =
    List.filter
      (fun (ld : Ir.op) -> class_of (Ir.Op.operand ld 0) <> Small_constant)
      load_ops
  in
  let apply_reader_count v =
    List.fold_left
      (fun n (a : Ir.op) ->
        n
        + List.length
            (List.filter (fun o -> Ir.Value.equal o v) (Ir.Op.operands a)))
      0 applies
  in
  let store_reader_count v =
    List.length
      (List.filter (fun (st : Ir.op) -> Ir.Value.equal (Ir.Op.operand st 0) v) stores)
  in
  let name_of_arg arg =
    let rec go i = function
      | [] -> "f"
      | (a, _) :: rest ->
        if Ir.Value.equal a arg then Printf.sprintf "arg%d" i else go (i + 1) rest
    in
    go 0 classes
  in
  List.iter
    (fun (ld : Ir.op) ->
      let temp = Ir.Op.result ld 0 in
      let readers = apply_reader_count temp in
      add_source temp
        {
          so_name = name_of_arg (Ir.Op.operand ld 0);
          so_halo = source_halo func temp rank;
          so_is_field = true;
          so_apply_readers = readers;
          so_store_readers = store_reader_count temp;
          so_has_shift = readers > 0;
          so_value = None;
          so_shift = None;
        })
    field_loads;
  List.iteri
    (fun i (a : Ir.op) ->
      let temp = Ir.Op.result a 0 in
      let readers = apply_reader_count temp in
      let halo = source_halo func temp rank in
      add_source temp
        {
          so_name = Printf.sprintf "t%d" i;
          so_halo = halo;
          so_is_field = false;
          so_apply_readers = readers;
          so_store_readers = store_reader_count temp;
          so_has_shift = readers > 0 && List.exists (fun h -> h > 0) halo;
          so_value = None;
          so_shift = None;
        })
    applies;
  (* ---- new function ---- *)
  let new_arg_tys =
    List.map
      (fun (_, cls) ->
        match cls with
        | Field_input | Field_output | Field_inout -> packed_field_ty
        | Small_constant -> small_ptr_ty
        | Scalar_constant -> Ty.F64)
      classes
  in
  let new_func =
    Func.build_func m_new ~name:plan.p_kernel_name ~arg_tys:new_arg_tys
      ~result_tys:[] (fun b new_args ->
        let arg_pairs = List.combine (List.map fst classes) new_args in
        let new_of_old v =
          List.find_map
            (fun (o, n) -> if Ir.Value.equal o v then Some n else None)
            arg_pairs
        in
        (* ---- step 9: interfaces ---- *)
        let bank = ref 0 in
        List.iteri
          (fun i ((_, cls), new_arg) ->
            match cls with
            | Field_input | Field_output | Field_inout ->
              Hls.interface b ~mode:"m_axi"
                ~bundle:(Printf.sprintf "gmem%d" i)
                ~hbm_bank:!bank new_arg;
              incr bank
            | Small_constant ->
              Hls.interface b ~mode:"m_axi" ~bundle:"gmem_small" ~hbm_bank:(-2)
                new_arg
            | Scalar_constant -> ())
          (List.combine classes new_args);
        (* ---- streams (step 3) ---- *)
        List.iter
          (fun (_, so) ->
            let value_readers =
              (if so.so_has_shift then 1 else so.so_apply_readers)
              + so.so_store_readers
            in
            let depth = if so.so_is_field then depth_external else depth_internal in
            so.so_value <-
              Some (make_box b ~elem:Ty.F64 ~depth ~readers:value_readers);
            if so.so_has_shift then
              so.so_shift <-
                Some
                  (make_box b
                     ~elem:(Ty.Array (nb_size so.so_halo, Ty.F64))
                     ~depth:depth_internal ~readers:so.so_apply_readers))
          (List.rev !sources);
        let value_box so =
          match so.so_value with Some bx -> bx | None -> assert false
        in
        (* ---- step 3 & 7: one load_data stage ---- *)
        let load_callee = Printf.sprintf "load_data_%s" plan.p_kernel_name in
        ignore
          (Hls.dataflow b ~stage:"load_data" (fun db ->
               let ptrs =
                 List.filter_map
                   (fun (ld : Ir.op) -> new_of_old (Ir.Op.operand ld 0))
                   field_loads
               in
               let strms =
                 List.map
                   (fun (ld : Ir.op) ->
                     match get_source (Ir.Op.result ld 0) with
                     | Some so -> (value_box so).bx_main
                     | None -> assert false)
                   field_loads
               in
               ignore
                 (Llvm_d.call db ~callee:load_callee ~operands:(ptrs @ strms) ())));
        (* ---- shift stages ---- *)
        List.iter
          (fun (_, so) ->
            match so.so_shift with
            | Some shift_bx ->
              let src = take (value_box so) in
              let df =
                Hls.dataflow b ~stage:("shift:" ^ so.so_name) (fun db ->
                    ignore
                      (Llvm_d.call db ~callee:"shift_buffer"
                         ~operands:[ src; shift_bx.bx_main ] ()))
              in
              Ir.Op.set_attr df "halo" (ints so.so_halo);
              Ir.Op.set_attr df "extent" (ints padded_extent)
            | None -> ())
          (List.rev !sources);
        (* ---- duplicate stages ---- *)
        let dup_stage name (bx : box) =
          if bx.bx_copies <> [] then
            ignore
              (Hls.dataflow b ~stage:("dup:" ^ name) (fun db ->
                   let lb = Arith.constant_index db 0 in
                   let ub = Arith.constant_index db total_padded in
                   let step = Arith.constant_index db 1 in
                   ignore
                     (Scf.for_ db ~lb ~ub ~step (fun fb _iv ->
                          Hls.pipeline fb ~ii:1;
                          let v = Hls.read fb bx.bx_main in
                          List.iter (fun c -> Hls.write fb v c) bx.bx_copies))))
        in
        List.iter
          (fun (_, so) ->
            dup_stage so.so_name (value_box so);
            match so.so_shift with
            | Some bx -> dup_stage (so.so_name ^ "_shift") bx
            | None -> ())
          (List.rev !sources);
        (* ---- compute stages (steps 4, 5, 8) ---- *)
        List.iter
          (fun (apply : Ir.op) ->
            let so =
              match get_source (Ir.Op.result apply 0) with
              | Some so -> so
              | None -> assert false
            in
            let out_stream = (value_box so).bx_main in
            let df =
              Hls.dataflow b ~stage:("compute:" ^ so.so_name) (fun db ->
                  let inputs =
                    List.map2
                      (fun operand arg ->
                        match get_source operand with
                        | Some src ->
                          if src.so_has_shift then
                            ( arg,
                              From_shift
                                ( take
                                    (match src.so_shift with
                                    | Some bx -> bx
                                    | None -> assert false),
                                  src.so_halo ) )
                          else (arg, From_value (take (value_box src)))
                        | None -> (
                          (* small data or scalar *)
                          match Ir.Value.defining_op operand with
                          | Some ld
                            when Ir.Op.name ld = Stencil.load_op
                                 && class_of (Ir.Op.operand ld 0)
                                    = Small_constant ->
                            let small_arg = Ir.Op.operand ld 0 in
                            let new_arg =
                              match new_of_old small_arg with
                              | Some v -> v
                              | None -> assert false
                            in
                            (arg, From_small (emit_small_copy db ~small_arg ~new_arg))
                          | _ -> (
                            match new_of_old operand with
                            | Some nv -> (arg, From_scalar nv)
                            | None ->
                              Err.raise_error
                                "stencil-to-hls: unclassified apply operand"))
                      )
                      (Ir.Op.operands apply)
                      (Ir.Block.args (Stencil.apply_block apply))
                  in
                  build_compute_body db ~grid:plan.p_grid
                    ~field_halo:plan.p_field_halo ~apply ~inputs ~out_stream)
            in
            Ir.Op.set_attr df "target" (Attr.Str so.so_name))
          applies;
        (* ---- step 6: write_data ---- *)
        let write_callee = Printf.sprintf "write_data_%s" plan.p_kernel_name in
        let wdf =
          Hls.dataflow b ~stage:"write_data" (fun db ->
              let operands =
                List.concat_map
                  (fun (st : Ir.op) ->
                    let so =
                      match get_source (Ir.Op.operand st 0) with
                      | Some so -> so
                      | None ->
                        Err.raise_error "stencil-to-hls: store of unknown source"
                    in
                    let stream = take (value_box so) in
                    let dst =
                      match new_of_old (Ir.Op.operand st 1) with
                      | Some v -> v
                      | None -> assert false
                    in
                    [ stream; dst ])
                  stores
              in
              ignore (Llvm_d.call db ~callee:write_callee ~operands ()))
        in
        Ir.Op.set_attr wdf "halo" (ints plan.p_field_halo);
        Ir.Op.set_attr wdf "extent" (ints padded_extent);
        Func.return_ b [])
  in
  Ir.Op.set_attr new_func "cu" (Attr.Int plan.p_cu);
  Ir.Op.set_attr new_func "ports_per_cu" (Attr.Int plan.p_ports_per_cu);
  Ir.Op.set_attr new_func "grid" (ints plan.p_grid);
  Ir.Op.set_attr new_func "field_halo" (ints plan.p_field_halo);
  Ir.Op.set_attr new_func "hls_kernel" (Attr.Bool true);
  (plan, new_func)

(* Transform every kernel function into a fresh module; the input module
   is left intact. *)
let run (m : Ir.op) =
  let m_new = Ir.Module_.create () in
  let plans = List.map (transform_func m_new) (Ir.Module_.funcs m) in
  (m_new, plans)

let pass =
  Pass.make ~name:"stencil-to-hls"
    ~description:
      "apply the nine-step Stencil-HMLS transformation (in place on the module)"
    (fun m ->
      let m_new, _ = run m in
      let body = Ir.Module_.body m in
      List.iter
        (fun op ->
          Ir.Op.walk op (fun o ->
              Array.iteri
                (fun i v -> Ir.Value.remove_use v ~op:o ~index:i)
                o.Ir.o_operands);
          Ir.Op.detach op)
        (Ir.Block.ops body);
      List.iter
        (fun op ->
          Ir.Op.detach op;
          Ir.Block.append body op)
        (Ir.Module_.ops m_new))

let () = Pass.register pass
