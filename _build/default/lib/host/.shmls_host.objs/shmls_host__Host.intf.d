lib/host/host.mli: Shmls Shmls_interp
