lib/host/host.ml: Array Err List Shmls Shmls_fpga Shmls_interp Shmls_ir
