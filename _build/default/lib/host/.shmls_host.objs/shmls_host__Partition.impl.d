lib/host/partition.ml: Err Float Host List Shmls Shmls_interp
