lib/host/partition.mli: Host Shmls Shmls_interp
