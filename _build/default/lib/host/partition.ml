(* Domain decomposition across devices.

   The stencil dialect the paper builds on also carries distributed-
   memory lowerings; this module provides the host-side counterpart for
   the simulated FPGAs: split the grid into slabs along the streamed
   dimension (with halo overlap), compile one kernel per slab shape, run
   every slab (each on its own simulated device), and reassemble.  For
   the single-sweep kernels evaluated here no mid-run exchange is needed
   — each slab's input halo is seeded from the neighbouring slab's
   interior, exactly what an MPI halo exchange would have delivered. *)

type partitioned_run = {
  pr_outputs : (string * Shmls_interp.Grid.t) list; (* reassembled, padded *)
  pr_events : Host.event list; (* one per slab *)
  pr_slabs : int;
}

(* Slab extents along dim 0: as equal as possible. *)
let slab_extents n p =
  let base = n / p and extra = n mod p in
  List.init p (fun i -> base + if i < extra then 1 else 0)

let run (kernel : Shmls.Ast.kernel) ~grid ~slabs ?(seed = 7)
    ~(params : (string * float) list) () =
  if slabs < 1 then Err.raise_error "partition: need at least one slab";
  let n0 = List.hd grid in
  if n0 < slabs then Err.raise_error "partition: more slabs than rows";
  (* global input data, identical to what a single-device run would see *)
  let reference = Shmls.compile kernel ~grid in
  let halo = reference.c_lowered.l_halo in
  let h0 = List.hd halo in
  let global = Shmls.Interp.alloc_state ~seed reference.c_lowered in
  let extents = slab_extents n0 slabs in
  let offsets =
    List.fold_left (fun acc e -> (List.hd acc + e) :: acc) [ 0 ] extents
    |> List.tl |> List.rev
  in
  (* run each slab *)
  let events = ref [] in
  let outputs =
    List.map
      (fun (fd : Shmls.Ast.field_decl) ->
        (fd.fd_name, Shmls_interp.Grid.copy (List.assoc fd.fd_name global.fields)))
      kernel.k_fields
  in
  List.iter2
    (fun offset extent ->
      let slab_grid = extent :: List.tl grid in
      let c = Shmls.compile kernel ~grid:slab_grid in
      let device = Host.create_device () in
      let prog = Host.build_program device c in
      (* field buffers seeded from the global grids, shifted into slab
         coordinates; the dim-0 halo rows come from the neighbouring
         slabs' data — the "exchange" *)
      let field_bufs =
        List.map
          (fun (fd : Shmls.Ast.field_decl) ->
            let buf = Host.alloc_field_buffer prog in
            let g = List.assoc fd.fd_name global.fields in
            Shmls_interp.Grid.iter_bounds buf.buf_grid.bounds (fun idx ->
                match idx with
                | i0 :: rest ->
                  Shmls_interp.Grid.set buf.buf_grid idx
                    (Shmls_interp.Grid.get g ((i0 + offset) :: rest))
                | [] -> ());
            (fd.fd_name, buf))
          kernel.k_fields
      in
      let small_bufs =
        List.map
          (fun (sd : Shmls.Ast.small_decl) ->
            let buf = Host.alloc_small_buffer prog ~axis:sd.sd_axis in
            let g = List.assoc sd.sd_name global.smalls in
            (* axis 0 smalls are sliced like the fields; other axes copy *)
            Shmls_interp.Grid.iter_bounds buf.buf_grid.bounds (fun idx ->
                match idx with
                | [ i ] ->
                  let src = if sd.sd_axis = 0 then i + offset else i in
                  Shmls_interp.Grid.set buf.buf_grid idx
                    (Shmls_interp.Grid.get g [ src ])
                | _ -> ());
            (sd.sd_name, buf))
          kernel.k_smalls
      in
      let args =
        List.map (fun (_, b) -> Host.Buffer b) field_bufs
        @ List.map (fun (_, b) -> Host.Buffer b) small_bufs
        @ List.map
            (fun name ->
              match List.assoc_opt name params with
              | Some v -> Host.Scalar v
              | None -> Err.raise_error "partition: missing parameter %s" name)
            kernel.k_params
      in
      let event = Host.enqueue prog args in
      events := event :: !events;
      (* gather: copy the slab's interior back into the global outputs *)
      List.iter
        (fun (fd : Shmls.Ast.field_decl) ->
          if fd.fd_role <> Shmls.Ast.Input then begin
            let buf = List.assoc fd.fd_name field_bufs in
            let dst = List.assoc fd.fd_name outputs in
            let interior =
              Shmls.Ty.make_bounds
                ~lb:(List.map (fun _ -> 0) slab_grid)
                ~ub:slab_grid
            in
            Shmls_interp.Grid.iter_bounds interior (fun idx ->
                match idx with
                | i0 :: rest ->
                  Shmls_interp.Grid.set dst
                    ((i0 + offset) :: rest)
                    (Shmls_interp.Grid.get buf.buf_grid idx)
                | [] -> ())
          end)
        kernel.k_fields)
    offsets extents;
  ignore h0;
  { pr_outputs = outputs; pr_events = List.rev !events; pr_slabs = slabs }

(* A partitioned run is correct iff it reproduces the single-device
   reference bit-exactly on the interior; returns the max difference. *)
let verify_against_reference (kernel : Shmls.Ast.kernel) ~grid ~slabs
    ?(seed = 7) ~params () =
  let result = run kernel ~grid ~slabs ~seed ~params () in
  let reference = Shmls.compile kernel ~grid in
  let st = Shmls.Interp.alloc_state ~seed reference.c_lowered in
  let st = { st with Shmls.Interp.params } in
  ignore (Shmls.Interp.run_func reference.c_lowered.l_func
            ~args:(Shmls.Interp.state_args st));
  let interior =
    Shmls.Ty.make_bounds ~lb:(List.map (fun _ -> 0) grid) ~ub:grid
  in
  List.fold_left
    (fun acc (fd : Shmls.Ast.field_decl) ->
      if fd.fd_role = Shmls.Ast.Input then acc
      else
        let a = List.assoc fd.fd_name st.fields in
        let b = List.assoc fd.fd_name result.pr_outputs in
        Float.max acc (Shmls_interp.Grid.max_abs_diff_on interior a b))
    0.0 kernel.k_fields

(* Aggregate throughput: slabs run concurrently on separate devices, so
   the wall time is the slowest slab's. *)
let aggregate_mpts ~grid (r : partitioned_run) =
  let slowest =
    List.fold_left (fun acc e -> Float.max acc (Host.duration_s e)) 0.0 r.pr_events
  in
  float_of_int (List.fold_left ( * ) 1 grid) /. slowest /. 1e6
