(** Domain decomposition across (simulated) devices: split the grid into
    slabs along the streamed dimension with halo overlap, run each slab
    on its own device, and reassemble — the host-side counterpart of the
    stencil dialect's distributed-memory lowerings. Single-sweep kernels
    need no mid-run exchange: each slab's halo is seeded from its
    neighbours' data, as an MPI exchange would have delivered. *)

type partitioned_run = {
  pr_outputs : (string * Shmls_interp.Grid.t) list;
  pr_events : Host.event list;
  pr_slabs : int;
}

(** Run a kernel over [slabs] devices. Raises {!Err.Error} when there are
    more slabs than rows or a parameter is missing. *)
val run :
  Shmls.Ast.kernel ->
  grid:int list ->
  slabs:int ->
  ?seed:int ->
  params:(string * float) list ->
  unit ->
  partitioned_run

(** Max |difference| of the reassembled result against a single-device
    reference run on identical data (0 when bit-exact). *)
val verify_against_reference :
  Shmls.Ast.kernel ->
  grid:int list ->
  slabs:int ->
  ?seed:int ->
  params:(string * float) list ->
  unit ->
  float

(** Aggregate MPt/s with all slabs running concurrently. *)
val aggregate_mpts : grid:int list -> partitioned_run -> float
