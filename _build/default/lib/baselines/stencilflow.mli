(** StencilFlow baseline [8]: reaches II = 1 but produced no results in
    the paper's evaluation. The model reproduces the failure modes
    mechanically: default (unbalanced) FIFO depths plus an
    under-replicated coefficient stream wedge PW advection in the cycle
    simulator; kernels with selection/limiter constructs (the
    sub-selection stand-in) are rejected as inexpressible; the DaCe
    bank-group limit blocks 134M. *)

open Shmls_frontend

(** Does the kernel need sub-selections (min/max limiter constructs)? *)
val has_subselection : Ast.kernel -> bool

val proxy_grid : int list -> int list
val resources : Ast.kernel -> Shmls_fpga.Resources.usage

type build = {
  b_usage : Shmls_fpga.Resources.usage;
  b_sim : Shmls_fpga.Cycle_sim.result;
}

(** Build the unbalanced design (with the shared coefficient stream when
    the kernel has small data) and cycle-simulate it on a proxy grid. *)
val build_and_simulate : Ast.kernel -> grid:int list -> build

val evaluate : Ast.kernel -> grid:int list -> Flow.outcome

(** Resource usage of the built bitstream (reported by the paper's
    Table 1 even though runs deadlock). *)
val resource_usage : Ast.kernel -> Shmls_fpga.Resources.usage
