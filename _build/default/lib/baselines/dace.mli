(** DaCe baseline model [3]: a small SDFG substrate (states, maps,
    tasklets, memlets) plus the structural facts the paper measured —
    pipeline II 9, one monolithic pipeline per dependency component
    (serialised), no CU replication, no automatic multi-bank HBM
    assignment (PW 134M fails to compile). *)

type memlet = { ml_data : string; ml_volume : int }

type node =
  | Access of string
  | Map_entry of { me_label : string; me_range : int }
  | Map_exit of string
  | Tasklet of { t_label : string; t_flops : int; t_inputs : string list }

type edge = { e_src : int; e_dst : int; e_memlet : memlet }
type state = { st_label : string; st_nodes : node array; st_edges : edge list }
type sdfg = { sd_name : string; sd_states : state list }

(** Build the SDFG: one state per weakly-connected component. *)
val sdfg_of_kernel : Shmls_frontend.Ast.kernel -> grid:int list -> sdfg

val n_states : sdfg -> int
val sdfg_flops : sdfg -> int
val sdfg_tasklets : sdfg -> int

(** Measured by the paper for DaCe's generated FPGA code. *)
val pipeline_ii : int

(** One fixed bank group per container: 512 MiB. *)
val max_container_bytes : int

val resources : Shmls_frontend.Ast.kernel -> Shmls_fpga.Resources.usage
val evaluate : Shmls_frontend.Ast.kernel -> grid:int list -> Flow.outcome
