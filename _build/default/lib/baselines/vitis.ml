(* Vitis HLS baseline: the kernel ported to C and synthesised directly,
   with no dataflow restructuring — the Von Neumann loop-nest shape that
   our stencil-to-cpu lowering produces.

   Cost model: one pipelined loop nest per stencil computation, executed
   back to back.  With data read from external memory on demand (no shift
   buffer), each loop's II is dominated by its memory reads:

       II_i = 3 + 8 x refs_i

   (3 cycles of loop control + ~8 cycles of amortised AXI read per
   reference: individual 64-bit reads cannot be coalesced into bursts).
   On the tracer-advection kernel this puts the critical-path loop,
   which has 20 references, at II = 163 — the value the paper measures
   for Vitis HLS.  Small C arrays (the coefficient data) are kept
   on-chip by Vitis automatically and cost no external accesses.

   CU replication is available to all flows that fit the port budget
   (the paper maximises CUs "where possible"), so the naive flow gets
   the same CU count as Stencil-HMLS. *)

let loop_ii ~refs = 3 + (8 * refs)

let critical_ii (stats : Flow.kernel_stats) =
  List.fold_left (fun acc r -> max acc (loop_ii ~refs:r)) 0
    stats.ks_refs_per_stencil

(* Total cycles per point: the loops run sequentially. *)
let cycles_per_point (stats : Flow.kernel_stats) =
  List.fold_left (fun acc r -> acc + loop_ii ~refs:r) 0 stats.ks_refs_per_stencil

let cu_count (stats : Flow.kernel_stats) =
  let ports = stats.ks_fields + if stats.ks_smalls = 0 then 0 else 1 in
  max 1 (Shmls_fpga.U280.max_axi_ports / ports)

let resources (k : Shmls_frontend.Ast.kernel) ~cu =
  let stats = Flow.stats_of_kernel k in
  let refs = List.fold_left ( + ) 0 stats.ks_refs_per_stencil in
  (* simple loop nests: small control, shared FP operators (high II
     leaves room for reuse), next to no local storage *)
  (* external-port multiplexing grows with both the reference count and
     the number of loop nests sharing the ports, which is what blows the
     tracer kernel up to ~14% LUTs in the paper's Table 2 *)
  Shmls_fpga.Resources.scale cu
    {
      Shmls_fpga.Resources.r_luts =
        1_000 + (34 * refs * stats.ks_stencils) + (9 * stats.ks_flops);
      r_ffs = 1_200 + (6 * refs * stats.ks_stencils);
      r_bram = 1 + (stats.ks_smalls / 4);
      r_uram = 0;
      r_dsps = 3 + (stats.ks_flops / 30);
    }

let evaluate (k : Shmls_frontend.Ast.kernel) ~grid =
  let stats = Flow.stats_of_kernel k in
  let cu = cu_count stats in
  (* the serialised loop nests are folded into the ii/serial split so the
     reported II matches the paper's critical-path number *)
  let ii = critical_ii stats in
  let total_cpp = cycles_per_point stats in
  let serial = max 1 (total_cpp / ii) in
  let est =
    Shmls_fpga.Perf_model.estimate
      ~total_padded:(Flow.total_padded ~grid ~halo:stats.ks_halo)
      ~interior:(Flow.interior ~grid)
      ~fill:200.0 ~ii ~serial ~cu
      ~ports:(cu * stats.ks_fields)
      ~bytes_per_point:
        (8
        * List.fold_left ( + ) 0 stats.ks_refs_per_stencil
        + (8 * stats.ks_outputs))
      ~clock_hz:Shmls_fpga.U280.clock_hz ()
  in
  let usage = resources k ~cu in
  let power =
    Shmls_fpga.Power.of_estimate ~usage ~est
      ~bytes_per_point:
        (Flow.bytes_per_point ~reads:stats.ks_inputs ~writes:stats.ks_outputs)
      ~interior:(Flow.interior ~grid)
  in
  Flow.Success
    {
      s_flow = "Vitis HLS";
      s_est = est;
      s_usage = usage;
      s_power = power;
      s_note =
        Printf.sprintf "critical-path II=%d, %d sequential loop nests, %d CU(s)"
          ii stats.ks_stencils cu;
    }
