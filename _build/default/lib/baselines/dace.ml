(* DaCe baseline model (Ben-Nun et al. [3]).

   DaCe compiles the kernel into a Stateful Dataflow Multigraph and
   FPGATransformSDFG produces one monolithic pipeline per SDFG state.  A
   small SDFG substrate is implemented here (states, maps, tasklets,
   memlets) so the structural properties the evaluation depends on are
   *derived* rather than asserted:

     - the generated pipeline's II is 9 (the paper measures this;
       mechanically it is the read-accumulate-write dependence through
       the drain buffer that Vitis schedules at II 9),
     - independent stencil computations are NOT split into concurrent
       dataflow stages: the weakly-connected components of the stencil
       dependency graph are serialised through the one pipeline (this is
       exactly the paper's 3x "split" term in its 108x decomposition),
     - no CU replication support: 1 CU regardless of the port budget,
     - no automatic multi-bank HBM assignment: a field larger than the
       bank group DaCe allocates (two 256 MB banks) fails to compile —
       the paper's missing DaCe bars at PW 134M. *)

(* -- the SDFG substrate --------------------------------------------- *)

type memlet = { ml_data : string; ml_volume : int }

type node =
  | Access of string
  | Map_entry of { me_label : string; me_range : int }
  | Map_exit of string
  | Tasklet of { t_label : string; t_flops : int; t_inputs : string list }

type edge = { e_src : int; e_dst : int; e_memlet : memlet }

type state = {
  st_label : string;
  st_nodes : node array;
  st_edges : edge list;
}

type sdfg = { sd_name : string; sd_states : state list }

(* Build the SDFG of a kernel: one state per weakly-connected component
   (DaCe fuses each chain into one map over the grid). *)
let sdfg_of_kernel (k : Shmls_frontend.Ast.kernel) ~grid =
  let open Shmls_frontend.Ast in
  let points = Flow.interior ~grid in
  (* group stencil indices by component *)
  let deps = dependencies k in
  let n = List.length k.k_stencils in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  List.iter (fun (a, b) -> let ra = find a and rb = find b in
              if ra <> rb then parent.(ra) <- rb) deps;
  let groups = Hashtbl.create 8 in
  List.iteri
    (fun i s ->
      let root = find i in
      let cur = Option.value ~default:[] (Hashtbl.find_opt groups root) in
      Hashtbl.replace groups root (cur @ [ (i, s) ]))
    k.k_stencils;
  let states =
    Hashtbl.fold
      (fun root members acc ->
        let nodes = ref [] in
        let edges = ref [] in
        let push n =
          nodes := !nodes @ [ n ];
          List.length !nodes - 1
        in
        let entry =
          push (Map_entry { me_label = Printf.sprintf "map_%d" root; me_range = points })
        in
        let last_tasklet = ref entry in
        List.iter
          (fun (i, (s : stencil_def)) ->
            let reads = stencil_reads s in
            let t =
              push
                (Tasklet
                   {
                     t_label = Printf.sprintf "stencil_%d" i;
                     t_flops = flops_expr s.sd_expr;
                     t_inputs = reads;
                   })
            in
            List.iter
              (fun r ->
                let a = push (Access r) in
                edges :=
                  { e_src = a; e_dst = t; e_memlet = { ml_data = r; ml_volume = points } }
                  :: !edges)
              reads;
            edges :=
              {
                e_src = !last_tasklet;
                e_dst = t;
                e_memlet = { ml_data = s.sd_target; ml_volume = points };
              }
              :: !edges;
            last_tasklet := t;
            let out = push (Access s.sd_target) in
            edges :=
              {
                e_src = t;
                e_dst = out;
                e_memlet = { ml_data = s.sd_target; ml_volume = points };
              }
              :: !edges)
          members;
        let _exit = push (Map_exit (Printf.sprintf "map_%d" root)) in
        {
          st_label = Printf.sprintf "state_%d" root;
          st_nodes = Array.of_list !nodes;
          st_edges = List.rev !edges;
        }
        :: acc)
      groups []
  in
  { sd_name = k.k_name; sd_states = List.rev states }

let n_states sdfg = List.length sdfg.sd_states

let sdfg_flops sdfg =
  List.fold_left
    (fun acc st ->
      Array.fold_left
        (fun acc n -> match n with Tasklet t -> acc + t.t_flops | _ -> acc)
        acc st.st_nodes)
    0 sdfg.sd_states

let sdfg_tasklets sdfg =
  List.fold_left
    (fun acc st ->
      Array.fold_left
        (fun acc n -> match n with Tasklet _ -> acc + 1 | _ -> acc)
        acc st.st_nodes)
    0 sdfg.sd_states

(* -- the flow model -------------------------------------------------- *)

(* Measured by the paper for the generated codes. *)
let pipeline_ii = 9

(* DaCe's FPGA codegen assigns each container to one fixed HBM bank
   group; no automatic multi-bank splitting. *)
let max_container_bytes = 2 * 256 * 1024 * 1024

let resources (k : Shmls_frontend.Ast.kernel) =
  let stats = Flow.stats_of_kernel k in
  let refs = List.fold_left ( + ) 0 stats.ks_refs_per_stencil in
  (* monolithic pipeline: wide muxing over all container ports (LUT
     heavy), drain/delay FIFOs in BRAM, shared FP operators (few DSPs at
     II 9) *)
  {
    Shmls_fpga.Resources.r_luts =
      85_000 + (180 * refs) + (1_500 * stats.ks_fields);
    r_ffs = 40_000 + (80 * refs) + (500 * stats.ks_fields);
    r_bram = 80 + (7 * stats.ks_inputs) + (2 * stats.ks_intermediates);
    r_uram = 0;
    r_dsps = 30 + (stats.ks_flops / 8);
  }

let evaluate (k : Shmls_frontend.Ast.kernel) ~grid =
  let stats = Flow.stats_of_kernel k in
  let field_bytes =
    8 * Flow.total_padded ~grid ~halo:stats.ks_halo
  in
  if field_bytes > max_container_bytes then
    Flow.Failure
      {
        f_flow = "DaCe";
        f_reason =
          Printf.sprintf
            "compile failure: container of %d MB exceeds the single bank \
             group (no automatic multi-bank assignment)"
            (field_bytes / (1024 * 1024));
      }
  else begin
    let sdfg = sdfg_of_kernel k ~grid in
    let serial = n_states sdfg in
    let est =
      Shmls_fpga.Perf_model.estimate
        ~total_padded:(Flow.total_padded ~grid ~halo:stats.ks_halo)
        ~interior:(Flow.interior ~grid)
        ~fill:2000.0 ~ii:pipeline_ii ~serial ~cu:1
        ~ports:stats.ks_fields
        ~bytes_per_point:
          (Flow.bytes_per_point ~reads:stats.ks_inputs ~writes:stats.ks_outputs)
        ~clock_hz:Shmls_fpga.U280.clock_hz ()
    in
    let usage = resources k in
    let power =
      Shmls_fpga.Power.of_estimate ~usage ~est
        ~bytes_per_point:
          (Flow.bytes_per_point ~reads:stats.ks_inputs ~writes:stats.ks_outputs)
        ~interior:(Flow.interior ~grid)
    in
    Flow.Success
      {
        s_flow = "DaCe";
        s_est = est;
        s_usage = usage;
        s_power = power;
        s_note =
          Printf.sprintf "SDFG: %d state(s), %d tasklets, II=%d, 1 CU"
            serial (sdfg_tasklets sdfg) pipeline_ii;
      }
  end
