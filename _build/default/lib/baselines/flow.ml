(* Common shape of a baseline-flow evaluation.

   Each baseline model reproduces the *structure* the paper measured for
   that flow (initiation interval, stage serialisation, CU count,
   resource profile, failure modes) and lets the shared performance /
   power models account the cycles — the comparison is then as generous
   to the baselines as the paper's own measurements were (DESIGN.md
   section 2). *)

type success = {
  s_flow : string;
  s_est : Shmls_fpga.Perf_model.estimate;
  s_usage : Shmls_fpga.Resources.usage;
  s_power : Shmls_fpga.Power.report;
  s_note : string;
}

type outcome =
  | Success of success
  | Failure of { f_flow : string; f_reason : string }

let flow_name = function Success s -> s.s_flow | Failure f -> f.f_flow

(* Structural statistics of a kernel that the flow models consume. *)
type kernel_stats = {
  ks_fields : int; (* external field arguments *)
  ks_inputs : int;
  ks_outputs : int;
  ks_smalls : int;
  ks_stencils : int;
  ks_intermediates : int;
  ks_components : int; (* weakly-connected components of the dep graph *)
  ks_refs_per_stencil : int list; (* field references, with multiplicity *)
  ks_small_refs_per_stencil : int list;
  ks_flops : int;
  ks_halo : int list;
}

let stats_of_kernel (k : Shmls_frontend.Ast.kernel) =
  let open Shmls_frontend.Ast in
  let refs s = List.length (field_refs s.sd_expr) in
  let small_refs s = List.length (small_refs s.sd_expr) in
  let deps = dependencies k in
  (* weakly-connected components over stencil indices *)
  let n = List.length k.k_stencils in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  List.iter (fun (a, b) -> union a b) deps;
  let components =
    List.init n find |> List.sort_uniq Int.compare |> List.length
  in
  {
    ks_fields = List.length k.k_fields;
    ks_inputs =
      List.length
        (List.filter (fun fd -> fd.fd_role = Input || fd.fd_role = Inout) k.k_fields);
    ks_outputs =
      List.length
        (List.filter (fun fd -> fd.fd_role = Output || fd.fd_role = Inout) k.k_fields);
    ks_smalls = List.length k.k_smalls;
    ks_stencils = List.length k.k_stencils;
    ks_intermediates = List.length (intermediates k);
    ks_components = components;
    ks_refs_per_stencil = List.map refs k.k_stencils;
    ks_small_refs_per_stencil = List.map small_refs k.k_stencils;
    ks_flops = flops k;
    ks_halo = halo k;
  }

let total_padded ~grid ~halo =
  List.fold_left ( * ) 1 (List.map2 (fun g h -> g + (2 * h)) grid halo)

let interior ~grid = List.fold_left ( * ) 1 grid

(* Bytes a flow moves per interior point when every field is read/written
   once per pass over the grid. *)
let bytes_per_point ~reads ~writes = 8 * (reads + writes)
