(** Common shape of a baseline-flow evaluation: each model reproduces
    the structure the paper measured for that tool and the shared
    performance/power models account the cycles. *)

type success = {
  s_flow : string;
  s_est : Shmls_fpga.Perf_model.estimate;
  s_usage : Shmls_fpga.Resources.usage;
  s_power : Shmls_fpga.Power.report;
  s_note : string;
}

type outcome =
  | Success of success
  | Failure of { f_flow : string; f_reason : string }

val flow_name : outcome -> string

(** Structural kernel statistics the flow models consume. *)
type kernel_stats = {
  ks_fields : int;
  ks_inputs : int;
  ks_outputs : int;
  ks_smalls : int;
  ks_stencils : int;
  ks_intermediates : int;
  ks_components : int;  (** weakly-connected dependency components *)
  ks_refs_per_stencil : int list;  (** field references, with multiplicity *)
  ks_small_refs_per_stencil : int list;
  ks_flops : int;
  ks_halo : int list;
}

val stats_of_kernel : Shmls_frontend.Ast.kernel -> kernel_stats
val total_padded : grid:int list -> halo:int list -> int
val interior : grid:int list -> int
val bytes_per_point : reads:int -> writes:int -> int
