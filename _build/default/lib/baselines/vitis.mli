(** Naive Vitis HLS baseline: the kernel ported to C and synthesised
    directly as Von Neumann loop nests. Cost model: one pipelined loop
    per stencil with II = 3 + 8 x refs (on-demand 64-bit external reads,
    no bursts) — which puts the tracer kernel's 20-reference critical
    loop at the paper's measured II of 163. *)

val loop_ii : refs:int -> int
val critical_ii : Flow.kernel_stats -> int

(** Total cycles per point (the loops run sequentially). *)
val cycles_per_point : Flow.kernel_stats -> int

val cu_count : Flow.kernel_stats -> int
val resources : Shmls_frontend.Ast.kernel -> cu:int -> Shmls_fpga.Resources.usage
val evaluate : Shmls_frontend.Ast.kernel -> grid:int list -> Flow.outcome
