(* StencilFlow baseline (de Fine Licht et al. [8]): stencil programs
   mapped onto a dataflow graph atop DaCe, reaching II = 1 — but, in the
   paper's evaluation, unable to produce results on either kernel:

     - PW advection compiled (for 8M and 32M) but runs never finished
       inside ten minutes, "a likely indicator of deadlock";
     - tracer advection could not be expressed at all for lack of
       sub-selection support (the selection/limiter constructs at the
       heart of the MUSCL scheme);
     - like DaCe, no automatic multi-bank assignment, so 134M cannot be
       built.

   The model reproduces the deadlock *mechanically*: it reuses our own
   stencil-to-hls pipeline to build the II=1 dataflow graph but skips
   the stream-depth balancing pass, leaving the default shallow FIFOs —
   then lets the cycle simulator run the network on a proxy grid.  Any
   kernel with converging paths of different delay (PW advection reads
   three shift buffers per compute stage) wedges exactly as the real
   tool did. *)

open Shmls_frontend

let has_subselection (k : Ast.kernel) =
  let rec expr_has = function
    | Ast.Binop ((Ast.Min | Ast.Max), _, _) -> true
    | Ast.Binop (_, a, b) -> expr_has a || expr_has b
    | Ast.Unop (_, a) -> expr_has a
    | Ast.Field_ref _ | Ast.Small_ref _ | Ast.Param_ref _ | Ast.Const _ -> false
  in
  List.exists (fun (s : Ast.stencil_def) -> expr_has s.sd_expr) k.k_stencils

(* Proxy grid for the deadlock check: same rank, laptop-sized. *)
let proxy_grid grid = List.map (fun g -> min g 12) grid

let resources (k : Ast.kernel) =
  let stats = Flow.stats_of_kernel k in
  (* an II=1 dataflow graph like ours, plus DaCe-generation overhead and
     deep delay buffers *)
  {
    Shmls_fpga.Resources.r_luts =
      36_000 + (160 * stats.ks_flops) + (1_800 * stats.ks_fields);
    r_ffs = 46_000 + (420 * stats.ks_flops);
    r_bram = 220 + (24 * stats.ks_inputs);
    r_uram = 0;
    r_dsps = 110 + (3 * stats.ks_flops);
  }

type build = {
  b_usage : Shmls_fpga.Resources.usage;
  b_sim : Shmls_fpga.Cycle_sim.result;
}

(* StencilFlow has no notion of the per-level coefficient arrays (small
   data): the PW advection port expresses tzc1(k) etc. as an auxiliary
   input *stream*, but the generated graph under-provisions its
   replication — one token stream is drained by every consuming compute
   node, so the producers run dry at 1/n of the run and the network
   wedges.  This is the mechanical stand-in for the deadlock the paper
   observed ("did not complete execution under 10 minutes, a likely
   indicator of deadlock"). *)
let inject_coefficient_stream (d : Shmls_fpga.Design.t) =
  let max_id =
    List.fold_left
      (fun acc (s : Shmls_fpga.Design.stream) -> max acc s.st_id)
      0 d.d_streams
  in
  let coef_id = max_id + 1 in
  let coef_stream =
    {
      Shmls_fpga.Design.st_id = coef_id;
      st_elem = Shmls_ir.Ty.F64;
      st_depth = 4;
      st_width_bits = 64;
    }
  in
  let producer = Shmls_fpga.Design.Load { out_streams = [ coef_id ]; ptr_args = [] } in
  let stages =
    producer
    :: List.map
         (fun stage ->
           match stage with
           | Shmls_fpga.Design.Compute c ->
             Shmls_fpga.Design.Compute
               { c with in_streams = c.in_streams @ [ coef_id ] }
           | other -> other)
         d.d_stages
  in
  { d with d_streams = coef_stream :: d.d_streams; d_stages = stages }

(* Build the unbalanced dataflow design and run the cycle simulator. *)
let build_and_simulate (k : Ast.kernel) ~grid =
  let l = Lower.lower k ~grid:(proxy_grid grid) in
  Shmls_transforms.Shape_inference.run_on_module l.l_module;
  let m_hls, _ = Shmls_transforms.Stencil_to_hls.run l.l_module in
  let designs = Shmls_fpga.Extract.extract_module m_hls in
  match designs with
  | [ d ] ->
    (* deliberately NO Depth_balance: StencilFlow's generated FIFOs keep
       their default depths; and the coefficient arrays ride a shared,
       under-replicated stream *)
    let d = if k.k_smalls <> [] then inject_coefficient_stream d else d in
    { b_usage = resources k; b_sim = Shmls_fpga.Cycle_sim.run d }
  | _ -> Err.raise_error "stencilflow: expected one kernel design"

let evaluate (k : Ast.kernel) ~grid =
  let stats = Flow.stats_of_kernel k in
  let field_bytes = 8 * Flow.total_padded ~grid ~halo:stats.ks_halo in
  if has_subselection k then
    Flow.Failure
      {
        f_flow = "StencilFlow";
        f_reason =
          "not expressible: the kernel's selection/limiter constructs need \
           sub-selections, which StencilFlow does not support";
      }
  else if field_bytes > Dace.max_container_bytes then
    Flow.Failure
      {
        f_flow = "StencilFlow";
        f_reason =
          "compile failure: built atop DaCe, same single-bank-group limit";
      }
  else begin
    let b = build_and_simulate k ~grid in
    if b.b_sim.deadlocked then
      Flow.Failure
        {
          f_flow = "StencilFlow";
          f_reason =
            Printf.sprintf
              "bitstream built (II=1) but execution deadlocks%s — run did \
               not complete within the 10-minute budget"
              (match b.b_sim.stalled_stage with
              | Some s -> " (wedged at " ^ s ^ ")"
              | None -> "");
        }
    else
      (* if the network happens to complete, report it like other flows *)
      let est =
        Shmls_fpga.Perf_model.estimate
          ~total_padded:(Flow.total_padded ~grid ~halo:stats.ks_halo)
          ~interior:(Flow.interior ~grid)
          ~fill:2000.0 ~ii:1 ~serial:1 ~cu:1 ~ports:stats.ks_fields
          ~bytes_per_point:
            (Flow.bytes_per_point ~reads:stats.ks_inputs ~writes:stats.ks_outputs)
          ~clock_hz:Shmls_fpga.U280.clock_hz ()
      in
      let usage = b.b_usage in
      let power =
        Shmls_fpga.Power.of_estimate ~usage ~est
          ~bytes_per_point:
            (Flow.bytes_per_point ~reads:stats.ks_inputs ~writes:stats.ks_outputs)
          ~interior:(Flow.interior ~grid)
      in
      Flow.Success
        {
          s_flow = "StencilFlow";
          s_est = est;
          s_usage = usage;
          s_power = power;
          s_note = "II=1 dataflow graph completed";
        }
  end

(* Resource usage is reported in the paper's Table 1 even though the runs
   deadlock: the bitstreams did build. *)
let resource_usage = resources
