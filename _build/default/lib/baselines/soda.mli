(** SODA-opt baseline [2]: Polygeist-outlined affine loops through
    SODA-opt's DSE with the Vitis backend. Reproduces the paper's two
    concessions: the full-unroll candidate is rejected on the resource
    check (unrolling disabled) and the malloc-lowered internal buffers
    are removed, pushing small-data reads to external memory — which
    drops SODA-opt below naive Vitis on PW advection while matching
    II 164 vs 163 on tracer advection. *)

val loop_ii : refs:int -> small_refs:int -> int
val critical_ii : Flow.kernel_stats -> int
val cycles_per_point : Flow.kernel_stats -> int

val resources :
  ?unroll:int -> Shmls_frontend.Ast.kernel -> cu:int -> Shmls_fpga.Resources.usage

(** Returns (chosen unroll factor, usage, rejected full-unroll usage). *)
val design_space_explore :
  Shmls_frontend.Ast.kernel ->
  cu:int ->
  grid:int list ->
  int * Shmls_fpga.Resources.usage * Shmls_fpga.Resources.usage option

val cu_count : Flow.kernel_stats -> int
val evaluate : Shmls_frontend.Ast.kernel -> grid:int list -> Flow.outcome
