(* SODA-opt baseline (Agostini et al. [2]): the kernel is outlined by
   cgeist/Polygeist into affine loops and run through SODA-opt's DSE,
   with the AMD Xilinx Vitis backend (as in the paper; the Bambu backend
   did not support the U280 shell used).

   Two concessions the paper had to make shape the model:

     - loop unrolling disabled: with any unrolling the generated
       pipeline did not fit the U280 even at one full unroll, so the DSE
       here explores unroll factors, rejects every factor > 1 on the
       resource check, and falls back to factor 1;
     - SODA-opt's internal memory buffers removed: they lower to malloc,
       which the Vitis backend cannot synthesise.  Without them, the
       small coefficient arrays that Vitis' C flow keeps on-chip are
       re-read from external memory on every access (a 32-cycle
       round-trip each), which is what drops SODA-opt below even naive
       Vitis on PW advection.  On kernels with no small data (tracer
       advection) the generated loops behave like the naive flow plus
       one extra cycle of outlining overhead: II 164 vs Vitis' 163,
       matching the paper. *)

let loop_ii ~refs ~small_refs = 4 + (8 * refs) + (32 * small_refs)

let critical_ii (stats : Flow.kernel_stats) =
  List.fold_left2
    (fun acc r s -> max acc (loop_ii ~refs:r ~small_refs:s))
    0 stats.ks_refs_per_stencil stats.ks_small_refs_per_stencil

let cycles_per_point (stats : Flow.kernel_stats) =
  List.fold_left2
    (fun acc r s -> acc + loop_ii ~refs:r ~small_refs:s)
    0 stats.ks_refs_per_stencil stats.ks_small_refs_per_stencil

let resources ?(unroll = 1) (k : Shmls_frontend.Ast.kernel) ~cu =
  let stats = Flow.stats_of_kernel k in
  let refs = List.fold_left ( + ) 0 stats.ks_refs_per_stencil in
  Shmls_fpga.Resources.scale (cu * unroll)
    {
      Shmls_fpga.Resources.r_luts =
        800 + (26 * refs * stats.ks_stencils) + (7 * stats.ks_flops);
      r_ffs = 1_000 + (5 * refs * stats.ks_stencils);
      r_bram = 1;
      r_uram = 0;
      r_dsps = 2 + (stats.ks_flops / 25);
    }

(* The DSE step, reproducing the paper's account:
   1. a *full* unroll of the innermost dimension replicates the datapath
      once per grid level — that pipeline does not fit the U280 even at
      one full unroll, so it is rejected on the resource check;
   2. partial unrolling would need SODA-opt's internal memory buffers,
      which had to be removed (they lower to malloc, unsupported by the
      Vitis backend);
   so unrolling is disabled and factor 1 is used.
   Returns (factor, usage, rejected-full-unroll-usage). *)
let design_space_explore (k : Shmls_frontend.Ast.kernel) ~cu ~grid =
  let stats = Flow.stats_of_kernel k in
  let innermost = List.nth grid (List.length grid - 1) in
  (* a full unroll replicates the whole floating-point datapath once per
     grid level: no operator sharing is possible any more *)
  let full =
    Shmls_fpga.Resources.scale (cu * innermost)
      (Shmls_fpga.Resources.flop_usage stats.ks_flops)
  in
  let fits_full = Shmls_fpga.Resources.fits full in
  if fits_full then (innermost, full, None)
  else (1, resources ~unroll:1 k ~cu, Some full)

let cu_count = Vitis.cu_count

let evaluate (k : Shmls_frontend.Ast.kernel) ~grid =
  let stats = Flow.stats_of_kernel k in
  let cu = cu_count stats in
  let factor, usage, rejected = design_space_explore k ~cu ~grid in
  let ii = critical_ii stats in
  let total_cpp = cycles_per_point stats / factor in
  let serial = max 1 (total_cpp / ii) in
  let est =
    Shmls_fpga.Perf_model.estimate
      ~total_padded:(Flow.total_padded ~grid ~halo:stats.ks_halo)
      ~interior:(Flow.interior ~grid)
      ~fill:200.0 ~ii ~serial ~cu
      ~ports:(cu * stats.ks_fields)
      ~bytes_per_point:
        (8
        * (List.fold_left ( + ) 0 stats.ks_refs_per_stencil
          + (4 * List.fold_left ( + ) 0 stats.ks_small_refs_per_stencil))
        + (8 * stats.ks_outputs))
      ~clock_hz:Shmls_fpga.U280.clock_hz ()
  in
  let power =
    Shmls_fpga.Power.of_estimate ~usage ~est
      ~bytes_per_point:
        (Flow.bytes_per_point ~reads:stats.ks_inputs ~writes:stats.ks_outputs)
      ~interior:(Flow.interior ~grid)
  in
  Flow.Success
    {
      s_flow = "SODA-opt";
      s_est = est;
      s_usage = usage;
      s_power = power;
      s_note =
        (match rejected with
        | Some full ->
          Printf.sprintf
            "DSE: full unroll rejected (would need %d%% of LUTs); unrolling \
             disabled, buffers removed (malloc), critical-path II=%d, unroll=%d, \
             %d CU(s)"
            (100 * full.Shmls_fpga.Resources.r_luts / Shmls_fpga.U280.luts)
            ii factor cu
        | None ->
          Printf.sprintf "DSE: full unroll fits; unroll=%d, II=%d, %d CU(s)"
            factor ii cu);
    }
