lib/baselines/vitis.mli: Flow Shmls_fpga Shmls_frontend
