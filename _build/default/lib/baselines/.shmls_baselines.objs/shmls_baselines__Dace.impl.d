lib/baselines/dace.ml: Array Flow Hashtbl List Option Printf Shmls_fpga Shmls_frontend
