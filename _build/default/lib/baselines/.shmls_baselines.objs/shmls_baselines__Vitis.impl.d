lib/baselines/vitis.ml: Flow List Printf Shmls_fpga Shmls_frontend
