lib/baselines/soda.mli: Flow Shmls_fpga Shmls_frontend
