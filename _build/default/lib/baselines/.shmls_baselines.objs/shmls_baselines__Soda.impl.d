lib/baselines/soda.ml: Flow List Printf Shmls_fpga Shmls_frontend Vitis
