lib/baselines/stencilflow.ml: Ast Dace Err Flow List Lower Printf Shmls_fpga Shmls_frontend Shmls_ir Shmls_transforms
