lib/baselines/stencilflow.mli: Ast Flow Shmls_fpga Shmls_frontend
