lib/baselines/dace.mli: Flow Shmls_fpga Shmls_frontend
