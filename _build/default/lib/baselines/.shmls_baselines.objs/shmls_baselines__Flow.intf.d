lib/baselines/flow.mli: Shmls_fpga Shmls_frontend
