lib/baselines/flow.ml: Array Int List Shmls_fpga Shmls_frontend
