(** Structured compiler errors with a context trail. *)

type t = { message : string; context : string list }

exception Error of t

val make : ?context:string list -> string -> t

(** Push a context frame (innermost first). *)
val add_context : string -> t -> t

val to_string : t -> string

(** [raise_error fmt ...] raises {!Error} with a formatted message. *)
val raise_error : ?context:string list -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [fail fmt ...] builds an [Error _] result with a formatted message. *)
val fail :
  ?context:string list -> ('a, Format.formatter, unit, ('b, t) result) format4 -> 'a

(** Run [f]; if it raises {!Error}, re-raise with [ctx] pushed. *)
val with_context : string -> (unit -> 'a) -> 'a

val pp : Format.formatter -> t -> unit

val result_to_string : ('a, t) result -> string

(** Unwrap a result, raising {!Error} on failure. *)
val get : ('a, t) result -> 'a
