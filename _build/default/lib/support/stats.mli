(** Descriptive statistics for the benchmark harness.

    All functions raise [Invalid_argument] on an empty list. *)

val mean : float list -> float

(** Sample variance (Bessel-corrected); [0.] for singletons. *)
val variance : float list -> float

val stddev : float list -> float
val min_max : float list -> float * float
val median : float list -> float
val geomean : float list -> float
