lib/support/table.mli:
