lib/support/table.ml: List String
