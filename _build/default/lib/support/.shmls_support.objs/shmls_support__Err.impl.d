lib/support/err.ml: Format Printf Result String
