lib/support/stats.mli:
