lib/support/idgen.mli:
