lib/support/err.mli: Format
