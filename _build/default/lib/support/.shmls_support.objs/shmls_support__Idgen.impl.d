lib/support/idgen.ml:
