(** Plain-text table rendering for the experiment harness. *)

type align = Left | Right

type t

(** [create headers] makes an empty table; alignment defaults to [Right]
    for every column. Raises [Invalid_argument] if [aligns] is supplied
    with a different length than [headers]. *)
val create : ?aligns:align list -> string list -> t

(** Append a row. Raises [Invalid_argument] on arity mismatch. *)
val add_row : t -> string list -> unit

(** Rows in insertion order. *)
val rows : t -> string list list

(** Render as a GitHub-style markdown table (trailing newline included). *)
val render : t -> string

val print : t -> unit
