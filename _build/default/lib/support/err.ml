(* Structured errors shared across the compiler stack.  Verification and
   lowering failures carry a context trail (innermost first) so that a
   failure deep inside a pass reports the op / pass / kernel it occurred
   in. *)

type t = { message : string; context : string list }

exception Error of t

let make ?(context = []) message = { message; context }

let add_context ctx t = { t with context = ctx :: t.context }

let to_string t =
  match t.context with
  | [] -> t.message
  | ctx -> Printf.sprintf "%s [in %s]" t.message (String.concat " < " ctx)

let raise_error ?context fmt =
  Format.kasprintf (fun message -> raise (Error (make ?context message))) fmt

let fail ?context fmt =
  (* NB: [Result.error], since the [Error] exception shadows the result
     constructor in this module. *)
  Format.kasprintf (fun message -> Result.error (make ?context message)) fmt

let with_context ctx f =
  try f () with Error e -> raise (Error (add_context ctx e))

let pp ppf t = Format.pp_print_string ppf (to_string t)

let result_to_string = function
  | Ok _ -> "ok"
  | Error e -> to_string e

let get = function
  | Ok v -> v
  | Error e -> raise (Error e)
