(** Monotonic id generators for IR entities. *)

type t

val create : unit -> t

(** [fresh t] returns the next id and advances the counter. *)
val fresh : t -> int

(** Reset the counter to zero (used by tests for stable printing). *)
val reset : t -> unit

(** Next id that would be returned, without advancing. *)
val peek : t -> int
