(* Monotonic id generators.  Each IR entity class (values, ops, blocks,
   regions) draws from its own counter so ids stay small and printable. *)

type t = { mutable next : int }

let create () = { next = 0 }

let fresh t =
  let id = t.next in
  t.next <- id + 1;
  id

let reset t = t.next <- 0

let peek t = t.next
