(** Design extraction: HLS-dialect kernel function -> {!Design.t},
    pattern-matching the stage structure the stencil-to-hls
    transformation emits (via the dataflow ops' "stage" attributes). *)

open Shmls_ir

val extract : Ir.op -> Design.t

(** Extract every function tagged [hls_kernel] in a module. *)
val extract_module : Ir.op -> Design.t list
