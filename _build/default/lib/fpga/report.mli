(** A Vitis-HLS-style synthesis report for a compiled design:
    performance, stage and stream tables, utilisation, interface map. *)

val render : Design.t -> string
