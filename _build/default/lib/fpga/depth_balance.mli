(** Stream-depth balancing: enlarge FIFOs so every multi-input stage can
    keep all inputs flowing despite different path latencies — the
    delay-matching StencilFlow lacked on PW advection. *)

(** Safety margin added on top of the computed skew, in elements. *)
val margin : int

(** Path delay (elements of lead) of every stream, keyed by stream id. *)
val stream_delays : Design.t -> (int, int) Hashtbl.t

(** Minimum depth each multi-consumed stream needs. *)
val required_depths : Design.t -> (int, int) Hashtbl.t

(** Rewrite the depth attributes of the design's create_stream ops;
    returns how many were enlarged. *)
val balance : Design.t -> int

(** Balance then re-extract, so stream records carry final depths. *)
val balance_and_reextract : Design.t -> Design.t
