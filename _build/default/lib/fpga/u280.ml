(* AMD Xilinx Alveo U280 device model: the resource envelope, HBM
   subsystem and shell limits the paper's evaluation runs against.
   Figures from the Alveo U280 data sheet (DS963). *)

let name = "Alveo U280"

(* Programmable-logic resources. *)
let luts = 1_304_000
let ffs = 2_607_000
let bram36 = 2016 (* 36 Kbit blocks: ~9 MB total *)
let uram = 960 (* 288 Kbit blocks: ~34 MB total *)
let dsps = 9024

let bram36_bytes = 36 * 1024 / 8
let uram_bytes = 288 * 1024 / 8

(* HBM2: 8 GB over 32 pseudo-channels. *)
let hbm_bytes = 8 * 1024 * 1024 * 1024
let hbm_channels = 32
let hbm_bandwidth_per_channel = 14.375e9 (* bytes/s; 460 GB/s aggregate *)

(* The XDMA shell supports at most 32 AXI4 master ports (the paper's
   CU-count limiter). *)
let max_axi_ports = 32

(* Kernel clock: Vitis' default target for the U280. *)
let clock_hz = 300.0e6

(* AXI port width used by the 512-bit packing optimisation. *)
let axi_bits = 512
let axi_bytes = axi_bits / 8

(* Typical board power envelope (W): shell + HBM idle draw, and the slope
   used by the activity-linear dynamic model in {!Power}. *)
let static_power_w = 22.0
