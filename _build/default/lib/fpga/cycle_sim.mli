(** Token-level cycle simulation with bounded FIFOs and back-pressure:
    measures fill latency, steady-state II and completion cycles, and
    detects deadlock (the StencilFlow failure mode). Values are the
    functional simulator's business; this counts tokens. *)

type result = {
  cycles : int;
  deadlocked : bool;
  stalled_stage : string option;  (** where progress stopped *)
  progress : (string * int * int) list;  (** stage, tokens done, target *)
  fifo_occupancy : (int * int * int) list;  (** stream, occ, cap at end *)
}

(** [on_cycle] is called after every simulated cycle with the FIFO
    occupancies (stream id, tokens); use {!Trace} to collect them. *)
val run : ?on_cycle:(int -> (int * int) list -> unit) -> Design.t -> result
