(** Occupancy tracing for the cycle simulator: sampled FIFO fill levels
    over time, exported as CSV or a quick ASCII profile. *)

type t = {
  tr_streams : int list;
  tr_samples : (int * int array) list;  (** cycle, occupancy per stream *)
}

(** Run the cycle simulator, sampling every [every] cycles. *)
val capture : ?every:int -> Design.t -> Cycle_sim.result * t

val to_csv : t -> string
val to_ascii : ?width:int -> t -> Design.t -> string
