lib/fpga/perf_model.ml: Depth_balance Design Float Format Hashtbl List U280
