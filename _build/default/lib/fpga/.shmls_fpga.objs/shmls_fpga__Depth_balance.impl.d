lib/fpga/depth_balance.ml: Attr Design Extract Hashtbl Ir List Shmls_dialects Shmls_ir
