lib/fpga/power.mli: Format Perf_model Resources
