lib/fpga/u280.mli:
