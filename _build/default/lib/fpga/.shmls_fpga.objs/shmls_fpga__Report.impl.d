lib/fpga/report.ml: Buffer Design List Perf_model Printf Resources String U280
