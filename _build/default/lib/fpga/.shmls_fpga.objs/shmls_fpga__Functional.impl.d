lib/fpga/functional.ml: Array Attr Design Err Float Hashtbl Hls Ir List Shmls_dialects Shmls_ir Ty
