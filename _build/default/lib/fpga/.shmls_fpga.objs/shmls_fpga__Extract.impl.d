lib/fpga/extract.ml: Attr Design Err Func Hls Int Ir List Llvm_d Shmls_dialects Shmls_ir String Ty
