lib/fpga/cycle_sim.mli: Design
