lib/fpga/perf_model.mli: Design Format
