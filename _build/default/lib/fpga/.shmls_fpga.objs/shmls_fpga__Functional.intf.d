lib/fpga/functional.mli: Design
