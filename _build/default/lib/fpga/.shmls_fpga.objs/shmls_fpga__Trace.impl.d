lib/fpga/trace.ml: Array Buffer Cycle_sim Design Hashtbl List Printf String
