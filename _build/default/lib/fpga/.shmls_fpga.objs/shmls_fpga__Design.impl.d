lib/fpga/design.ml: Array Err Hashtbl Ir List Shmls_ir Ty
