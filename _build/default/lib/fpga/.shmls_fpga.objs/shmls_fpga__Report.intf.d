lib/fpga/report.mli: Design
