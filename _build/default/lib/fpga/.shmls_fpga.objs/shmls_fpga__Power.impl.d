lib/fpga/power.ml: Format Perf_model Resources U280
