lib/fpga/cycle_sim.ml: Array Design Err Hashtbl List
