lib/fpga/trace.mli: Cycle_sim Design
