lib/fpga/depth_balance.mli: Design Hashtbl
