lib/fpga/design.mli: Ir Shmls_ir Ty
