lib/fpga/u280.ml:
