lib/fpga/extract.mli: Design Ir Shmls_ir
