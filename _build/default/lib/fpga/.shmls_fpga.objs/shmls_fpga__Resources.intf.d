lib/fpga/resources.mli: Design Format
