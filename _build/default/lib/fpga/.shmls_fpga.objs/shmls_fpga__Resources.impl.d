lib/fpga/resources.ml: Design Format List U280
