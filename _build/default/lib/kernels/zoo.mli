(** A kernel zoo beyond the paper's two evaluation kernels: wider halos
    (halo-2 high-order stencils), anisotropic mixes, chained pipelines,
    multi-output systems, column physics with small data. Backs the
    generalisation experiment (bench [zoo]). *)

val acoustic_wave_3d : Shmls_frontend.Ast.kernel
val biharmonic_2d : Shmls_frontend.Ast.kernel
val anisotropic_diffusion_3d : Shmls_frontend.Ast.kernel
val nonlinear_diffusion_2d : Shmls_frontend.Ast.kernel
val column_physics_3d : Shmls_frontend.Ast.kernel
val shallow_water_2d : Shmls_frontend.Ast.kernel

(** (kernel, laptop-scale grid) pairs. *)
val all : (Shmls_frontend.Ast.kernel * int list) list
