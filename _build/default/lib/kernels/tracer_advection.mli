(** The NEMO tracer-advection kernel (PSycloneBench [16]), the paper's
    second evaluation kernel, reconstructed to its reported structural
    parameters: 24 chained stencil computations (MUSCL gradients, slope
    limiting, upwinded fluxes, divergence updates) over 17 memory
    arguments, forming two weakly-connected dependency chains, with a
    20-reference critical-path stencil. 17 ports per CU -> 1 CU. *)

val kernel : Shmls_frontend.Ast.kernel
val grid_8m : int list
val grid_33m : int list
val sizes : (string * int list) list
val grid_small : int list

(** Structural facts asserted by the tests. *)
val n_stencils : int

val n_args : int
