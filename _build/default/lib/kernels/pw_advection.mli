(** The Piacsek-Williams advection scheme [14] (MONC), the paper's first
    evaluation kernel: three independent stencil computations (su, sv,
    sw) over the wind fields (u, v, w) with per-level vertical
    coefficient arrays (small data).

    Structure matches the paper exactly: 3 stencils, 6 field arguments +
    1 shared small-data port = 7 AXI ports per CU, 4 CUs on the 32-port
    U280 shell, halo 1 everywhere. *)

val kernel : Shmls_frontend.Ast.kernel

(** The paper's problem sizes: only the streamed dimension grows. *)
val grid_8m : int list

val grid_32m : int list
val grid_134m : int list
val sizes : (string * int list) list

(** Laptop-scale grid with the same shape, for tests and examples. *)
val grid_small : int list
