lib/kernels/didactic.mli: Shmls_frontend
