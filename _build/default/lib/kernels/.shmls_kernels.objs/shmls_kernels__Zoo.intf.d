lib/kernels/zoo.mli: Shmls_frontend
