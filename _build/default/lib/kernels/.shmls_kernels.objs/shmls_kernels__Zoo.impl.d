lib/kernels/zoo.ml: List Shmls_frontend
