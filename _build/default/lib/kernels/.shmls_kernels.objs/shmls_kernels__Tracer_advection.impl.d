lib/kernels/tracer_advection.ml: List Shmls_frontend
