lib/kernels/pw_advection.ml: Shmls_frontend
