lib/kernels/pw_advection.mli: Shmls_frontend
