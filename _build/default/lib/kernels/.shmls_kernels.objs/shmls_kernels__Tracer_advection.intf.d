lib/kernels/tracer_advection.mli: Shmls_frontend
