lib/kernels/didactic.ml: Shmls_frontend
