(** Small self-contained kernels for examples, tests and ablations:
    1D/2D/3D, single-stencil / chained / small-data shapes. *)

val sum_neighbours_1d : Shmls_frontend.Ast.kernel

(** The paper's Listing 1 example: out(i) = inp(i-1) + inp(i+1). *)

val laplace_2d : Shmls_frontend.Ast.kernel
val heat_3d : Shmls_frontend.Ast.kernel
val gradient_smooth_3d : Shmls_frontend.Ast.kernel
val all : Shmls_frontend.Ast.kernel list
