(** Lowering the HLS dialect to CIRCT (the paper's first further-work
    item): the extracted dataflow design becomes a CIRCT-compatible
    hardware netlist in the [hw] + [esi] dialects — stages as
    [hw.instance]s of an external stage library, streams as
    back-pressured [!esi.channel<T>] values, balanced FIFO depths as
    [esi.buffer] stages. *)

type port = { p_name : string; p_ty : string; p_dir : [ `In | `Out ] }
type extern_module = { em_name : string; em_ports : port list }

type instance = {
  i_name : string;
  i_module : string;
  i_inputs : (string * string) list;
  i_outputs : (string * string * string) list;
}

type buffer_stage = {
  b_result : string;
  b_input : string;
  b_depth : int;
  b_ty : string;
}

type hw_module = {
  m_name : string;
  m_args : (string * string) list;
  m_instances : instance list;
  m_buffers : buffer_stage list;
}

type circuit = { c_externs : extern_module list; c_modules : hw_module list }

(** The ESI channel type for a stream element type. *)
val channel_ty : Shmls_ir.Ty.t -> string

val build : Design.t -> circuit
val emit_circuit : circuit -> string

(** Design -> CIRCT-compatible textual MLIR. *)
val emit : Design.t -> string

(** (extern modules, instances, buffers) of the first module. *)
val stats : circuit -> int * int * int
