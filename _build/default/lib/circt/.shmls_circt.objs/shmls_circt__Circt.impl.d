lib/circt/circt.ml: Buffer Design Err Hashtbl List Printf Shmls_ir String Ty
