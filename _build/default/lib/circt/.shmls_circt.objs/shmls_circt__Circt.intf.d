lib/circt/circt.mli: Design Shmls_ir
