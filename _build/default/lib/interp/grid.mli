(** Dense rank-1..3 float grids over integer bounds: the runtime data
    representation shared by the reference interpreter and the
    functional FPGA simulator. Row-major over [lb, ub) per dimension. *)

open Shmls_ir

type t = { bounds : Ty.bounds; data : float array }

val create : Ty.bounds -> t
val copy : t -> t
val extent : t -> int list
val size : t -> int
val rank : t -> int

(** Raises {!Err.Error} when an index is outside the bounds. *)
val get : t -> int list -> float

val set : t -> int list -> float -> unit

(** Iterate over every point of [bounds] in row-major order. *)
val iter_bounds : Ty.bounds -> (int list -> unit) -> unit

val iter : t -> (int list -> float -> unit) -> unit
val map_inplace : t -> (int list -> float -> float) -> unit
val fill : t -> float -> unit

(** Deterministic pseudo-random contents in [-1, 1] (splitmix-style hash
    of the linear index), so every flow sees identical input data. *)
val init_hash : ?seed:int -> t -> unit

(** Reindex from [lb, ub) to [0, ub-lb) sharing the same storage (the
    row-major layout is unchanged, so writes alias). *)
val rebase_zero : t -> t

val max_abs_diff : t -> t -> float
val equal_within : tol:float -> t -> t -> bool

(** Max |difference| restricted to the given region. *)
val max_abs_diff_on : Ty.bounds -> t -> t -> float

val checksum : t -> float
