(* Dense rank-1..3 float grids over integer bounds, the runtime data
   representation shared by the reference interpreter and the functional
   FPGA simulator.  Indexing is row-major over [lb, ub) per dimension. *)

open Shmls_ir

type t = { bounds : Ty.bounds; data : float array }

let extent t = Ty.bounds_extent t.bounds
let size t = Ty.bounds_points t.bounds
let rank t = Ty.bounds_rank t.bounds

let create bounds =
  { bounds; data = Array.make (Ty.bounds_points bounds) 0.0 }

let copy t = { t with data = Array.copy t.data }

let linear_index t idx =
  let rec go lbs ubs idx acc =
    match (lbs, ubs, idx) with
    | [], [], [] -> acc
    | lb :: lbs', ub :: ubs', i :: idx' ->
      if i < lb || i >= ub then
        Err.raise_error "Grid: index %d outside [%d,%d)" i lb ub;
      go lbs' ubs' idx' ((acc * (ub - lb)) + (i - lb))
    | _ -> Err.raise_error "Grid: index rank mismatch"
  in
  go t.bounds.lb t.bounds.ub idx 0

let get t idx = t.data.(linear_index t idx)
let set t idx v = t.data.(linear_index t idx) <- v

(* Iterate f over every point of [bounds] (row-major). *)
let iter_bounds (bounds : Ty.bounds) f =
  let rank = Ty.bounds_rank bounds in
  let lb = Array.of_list bounds.lb and ub = Array.of_list bounds.ub in
  let idx = Array.copy lb in
  let rec go d =
    if d = rank then f (Array.to_list idx)
    else
      for i = lb.(d) to ub.(d) - 1 do
        idx.(d) <- i;
        go (d + 1)
      done
  in
  go 0

let iter t f = iter_bounds t.bounds (fun idx -> f idx (get t idx))

let map_inplace t f =
  iter_bounds t.bounds (fun idx -> set t idx (f idx (get t idx)))

let fill t v = Array.fill t.data 0 (Array.length t.data) v

(* Deterministic pseudo-random initialisation (splitmix-style hash of the
   linear index), so every flow sees identical input data without carrying
   an RNG around. *)
let init_hash ?(seed = 42) t =
  let n = Array.length t.data in
  for i = 0 to n - 1 do
    let z = ref (Int64.of_int ((i + 1) * 0x9E3779B9 + seed)) in
    z := Int64.mul !z 0xBF58476D1CE4E5B9L;
    z := Int64.logxor !z (Int64.shift_right_logical !z 31);
    let u =
      Int64.to_float (Int64.logand !z 0xFFFFFFFFL) /. 4294967296.0
    in
    t.data.(i) <- (2.0 *. u) -. 1.0
  done

(* Reindex from [lb, ub) to [0, ub-lb) sharing the same storage: the
   row-major layout is unchanged, so writes through either view alias. *)
let rebase_zero t =
  let extent = Ty.bounds_extent t.bounds in
  {
    t with
    bounds = Ty.make_bounds ~lb:(List.map (fun _ -> 0) extent) ~ub:extent;
  }

let max_abs_diff a b =
  if Array.length a.data <> Array.length b.data then
    Err.raise_error "Grid.max_abs_diff: size mismatch";
  let d = ref 0.0 in
  Array.iteri
    (fun i x -> d := Float.max !d (Float.abs (x -. b.data.(i))))
    a.data;
  !d

let equal_within ~tol a b = max_abs_diff a b <= tol

(* Restrict comparison to the interior region [lb, ub). *)
let max_abs_diff_on bounds a b =
  let d = ref 0.0 in
  iter_bounds bounds (fun idx ->
      d := Float.max !d (Float.abs (get a idx -. get b idx)));
  !d

let checksum t = Array.fold_left ( +. ) 0.0 t.data
