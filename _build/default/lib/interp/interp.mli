(** Reference interpreter for stencil-dialect IR: the ground truth the
    FPGA functional simulator and the baseline flows are checked
    against.

    Gather semantics: each stencil.apply computes into fresh grids
    before stencil.store copies the written region into the destination,
    so in-place (Inout) kernels behave like their PSyclone originals.
    Requires shape-inferred modules (every temp carries bounds). *)

open Shmls_ir

type rval = F of float | I of int | B of bool | G of Grid.t

type env

(** Execute one stencil-dialect function; grids are mutated in place. *)
val run_func : Ir.op -> args:rval list -> env

(** Execute a CPU-lowered function (scf/memref/arith, no stencil ops).
    Supports scf.for with loop-carried values and scf.if. *)
val run_generic_func : Ir.op -> args:rval list -> env

(** {2 Kernel-level convenience} *)

type kernel_state = {
  fields : (string * Grid.t) list;
  smalls : (string * Grid.t) list;
  params : (string * float) list;
}

(** Allocate deterministic pseudo-random inputs for a lowered kernel. *)
val alloc_state : ?seed:int -> Shmls_frontend.Lower.lowered -> kernel_state

(** The state as interpreter arguments, in function-argument order. *)
val state_args : kernel_state -> rval list

(** Allocate a fresh state, run the kernel, return the state. *)
val run_lowered : ?seed:int -> Shmls_frontend.Lower.lowered -> kernel_state
