lib/interp/interp.ml: Array Attr Err Float Func Grid Hashtbl Ir List Shmls_dialects Shmls_frontend Shmls_ir Stencil Ty
