lib/interp/grid.mli: Shmls_ir Ty
