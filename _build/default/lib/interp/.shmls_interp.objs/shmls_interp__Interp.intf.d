lib/interp/interp.mli: Grid Ir Shmls_frontend Shmls_ir
