lib/interp/grid.ml: Array Err Float Int64 List Shmls_ir Ty
