(** Operation attributes: compile-time constants attached to ops. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Ty of Ty.t
  | Ints of int list
      (** dense integer array, e.g. stencil offsets [<[-1, 0, 1]>] *)
  | Arr of t list
  | Sym of string  (** symbol reference, printed [@name] *)
  | Dict of (string * t) list

val equal : t -> t -> bool

val as_int : t -> int option
val as_float : t -> float option
val as_str : t -> string option
val as_sym : t -> string option
val as_ints : t -> int list option
val as_ty : t -> Ty.t option
val as_bool : t -> bool option

(** [*_exn] accessors raise [Invalid_argument] on kind mismatch. *)

val int_exn : t -> int
val float_exn : t -> float
val str_exn : t -> string
val sym_exn : t -> string
val ints_exn : t -> int list
val ty_exn : t -> Ty.t
val bool_exn : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
