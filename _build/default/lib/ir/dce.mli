(** Dead code elimination for [Pure] ops. *)

(** Erase dead pure ops under [root] to a fixpoint; returns the number of
    ops removed. *)
val run_on_op : Ir.op -> int

val pass : Pass.t
