(* Pass manager.  A pass transforms a module in place; pipelines run passes
   in order, optionally verifying after each one, and record wall-clock and
   op-count statistics that shmls-opt can print. *)

type t = { pass_name : string; description : string; run : Ir.op -> unit }

type stat = {
  stat_pass : string;
  duration_s : float;
  ops_before : int;
  ops_after : int;
}

let make ~name ?(description = "") run = { pass_name = name; description; run }

let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let register pass = Hashtbl.replace registry pass.pass_name pass

let lookup name = Hashtbl.find_opt registry name

let lookup_exn name =
  match lookup name with
  | Some p -> p
  | None -> Err.raise_error "unknown pass %S" name

let registered_passes () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry []
  |> List.sort String.compare

let run_one ?(verify = false) pass module_op =
  let ops_before = Ir.count_ops module_op in
  let t0 = Unix.gettimeofday () in
  Err.with_context ("pass " ^ pass.pass_name) (fun () -> pass.run module_op);
  let duration_s = Unix.gettimeofday () -. t0 in
  if verify then
    Err.with_context
      ("verification after pass " ^ pass.pass_name)
      (fun () -> Verifier.verify_exn module_op);
  { stat_pass = pass.pass_name; duration_s; ops_before; ops_after = Ir.count_ops module_op }

let run_pipeline ?(verify_each = false) passes module_op =
  List.map (fun pass -> run_one ~verify:verify_each pass module_op) passes

(* Parse "pass1,pass2,..." into a pipeline using the registry. *)
let parse_pipeline spec =
  String.split_on_char ',' spec
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")
  |> List.map lookup_exn

let pp_stat ppf s =
  Format.fprintf ppf "%-32s %8.3f ms  ops %d -> %d" s.stat_pass
    (s.duration_s *. 1000.0) s.ops_before s.ops_after
