(** Textual IR output in the MLIR generic form; {!Parser} reads it back. *)

val pp : Format.formatter -> Ir.op -> unit
val to_string : Ir.op -> string
val print : Ir.op -> unit
