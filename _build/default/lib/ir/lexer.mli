(** Hand-written lexer for the generic IR syntax produced by {!Printer}. *)

type token =
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | LT
  | GT
  | COMMA
  | EQUAL
  | COLON
  | ARROW
  | QUESTION
  | INT of int
  | FLOAT of float
  | STRING of string
  | PCT_ID of string
  | CARET_ID of string
  | AT_ID of string
  | IDENT of string
  | BANG_IDENT of string
  | EOF

type t

val token_to_string : token -> string
val create : string -> t

(** Current lookahead token. *)
val token : t -> token

val line : t -> int
val consume : t -> unit

(** Consume the lookahead if it equals [tok], else raise {!Err.Error}. *)
val expect : t -> token -> unit
