lib/ir/dce.ml: Array Dialect Ir List Pass
