lib/ir/dce.mli: Ir Pass
