lib/ir/cse.mli: Ir Pass
