lib/ir/cse.ml: Array Attr Dialect Hashtbl Int Ir List Pass String
