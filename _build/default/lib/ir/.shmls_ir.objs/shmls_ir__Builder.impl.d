lib/ir/builder.ml: Ir
