lib/ir/verifier.mli: Err Ir
