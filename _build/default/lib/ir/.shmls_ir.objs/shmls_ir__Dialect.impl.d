lib/ir/dialect.ml: Err Hashtbl Ir List String
