lib/ir/ir.ml: Array Attr Err Idgen Int List Map Set Ty
