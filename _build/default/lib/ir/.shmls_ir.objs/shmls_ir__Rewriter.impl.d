lib/ir/rewriter.ml: Err Int Ir List
