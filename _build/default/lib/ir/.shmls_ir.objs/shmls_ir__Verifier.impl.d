lib/ir/verifier.ml: Array Dialect Err Ir List
