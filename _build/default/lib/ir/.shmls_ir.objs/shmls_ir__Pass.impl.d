lib/ir/pass.ml: Err Format Hashtbl Ir List String Unix Verifier
