lib/ir/lexer.mli:
