lib/ir/ir.mli: Attr Map Set Ty
