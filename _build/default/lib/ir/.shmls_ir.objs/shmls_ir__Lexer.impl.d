lib/ir/lexer.ml: Buffer Err Format Printf Scanf String
