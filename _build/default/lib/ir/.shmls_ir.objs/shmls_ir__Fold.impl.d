lib/ir/fold.ml: Attr Dce Err Ir Pass Rewriter
