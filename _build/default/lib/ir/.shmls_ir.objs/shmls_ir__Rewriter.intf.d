lib/ir/rewriter.mli: Ir
