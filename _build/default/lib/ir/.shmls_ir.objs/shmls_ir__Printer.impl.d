lib/ir/printer.ml: Attr Buffer Format Hashtbl Idgen Ir List Printf String Ty
