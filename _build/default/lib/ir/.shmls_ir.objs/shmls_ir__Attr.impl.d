lib/ir/attr.ml: Float Format List String Ty
