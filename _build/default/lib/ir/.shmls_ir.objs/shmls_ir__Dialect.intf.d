lib/ir/dialect.mli: Err Ir
