lib/ir/parser.ml: Attr Err Format Hashtbl Ir Lexer List Ty
