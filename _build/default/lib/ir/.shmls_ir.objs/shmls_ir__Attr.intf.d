lib/ir/attr.mli: Format Ty
