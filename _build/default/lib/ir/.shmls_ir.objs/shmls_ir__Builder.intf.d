lib/ir/builder.mli: Attr Ir Ty
