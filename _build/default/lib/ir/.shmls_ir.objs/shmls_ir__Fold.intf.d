lib/ir/fold.mli: Ir Pass Rewriter
