(* Constant folding and algebraic simplification for arith ops.  Lives in
   the IR library (keyed purely on op names) so the canonicalize pass can be
   assembled without depending on the dialect constructors. *)

let const_float_of (v : Ir.value) =
  match Ir.Value.defining_op v with
  | Some op when Ir.Op.name op = "arith.constant" ->
    Attr.as_float (Ir.Op.get_attr_exn op "value")
  | _ -> None

let const_int_of (v : Ir.value) =
  match Ir.Value.defining_op v with
  | Some op when Ir.Op.name op = "arith.constant" ->
    Attr.as_int (Ir.Op.get_attr_exn op "value")
  | _ -> None

let build_const_float ~anchor ty f =
  let op =
    Ir.Op.create ~name:"arith.constant" ~result_tys:[ ty ]
      ~attrs:[ ("value", Attr.Float f) ] ()
  in
  (match anchor.Ir.o_parent with
  | Some b -> Ir.Block.insert_before b ~anchor op
  | None -> Err.raise_error "fold: anchor has no parent block");
  Ir.Op.result op 0

let build_const_int ~anchor ty i =
  let op =
    Ir.Op.create ~name:"arith.constant" ~result_tys:[ ty ]
      ~attrs:[ ("value", Attr.Int i) ] ()
  in
  (match anchor.Ir.o_parent with
  | Some b -> Ir.Block.insert_before b ~anchor op
  | None -> Err.raise_error "fold: anchor has no parent block");
  Ir.Op.result op 0

let float_binop_of_name = function
  | "arith.addf" -> Some ( +. )
  | "arith.subf" -> Some ( -. )
  | "arith.mulf" -> Some ( *. )
  | "arith.divf" -> Some ( /. )
  | _ -> None

let int_binop_of_name = function
  | "arith.addi" -> Some ( + )
  | "arith.subi" -> Some ( - )
  | "arith.muli" -> Some ( * )
  | _ -> None

(* Fold op if possible; returns true when the IR changed. *)
let try_fold (op : Ir.op) =
  let name = Ir.Op.name op in
  match (float_binop_of_name name, int_binop_of_name name) with
  | Some f, _ when Ir.Op.num_operands op = 2 -> (
    let a = Ir.Op.operand op 0 and b = Ir.Op.operand op 1 in
    match (const_float_of a, const_float_of b) with
    | Some x, Some y ->
      let r = build_const_float ~anchor:op (Ir.Value.ty (Ir.Op.result op 0)) (f x y) in
      Ir.replace_op op [ r ];
      true
    | Some 0.0, None when name = "arith.addf" ->
      Ir.replace_op op [ b ];
      true
    | None, Some 0.0 when name = "arith.addf" || name = "arith.subf" ->
      Ir.replace_op op [ a ];
      true
    | Some 1.0, None when name = "arith.mulf" ->
      Ir.replace_op op [ b ];
      true
    | None, Some 1.0 when name = "arith.mulf" || name = "arith.divf" ->
      Ir.replace_op op [ a ];
      true
    | _ -> false)
  | _, Some f when Ir.Op.num_operands op = 2 -> (
    let a = Ir.Op.operand op 0 and b = Ir.Op.operand op 1 in
    match (const_int_of a, const_int_of b) with
    | Some x, Some y ->
      let r = build_const_int ~anchor:op (Ir.Value.ty (Ir.Op.result op 0)) (f x y) in
      Ir.replace_op op [ r ];
      true
    | Some 0, None when name = "arith.addi" ->
      Ir.replace_op op [ b ];
      true
    | None, Some 0 when name = "arith.addi" || name = "arith.subi" ->
      Ir.replace_op op [ a ];
      true
    | Some 1, None when name = "arith.muli" ->
      Ir.replace_op op [ b ];
      true
    | None, Some 1 when name = "arith.muli" ->
      Ir.replace_op op [ a ];
      true
    | _ -> false)
  | _ -> false

let fold_pattern =
  Rewriter.make_pattern ~benefit:2 ~name:"arith-fold"
    ~matches:(fun op ->
      (match float_binop_of_name (Ir.Op.name op) with Some _ -> true | None -> false)
      || match int_binop_of_name (Ir.Op.name op) with Some _ -> true | None -> false)
    ~rewrite:try_fold ()

let canonicalize_op root =
  let changed = Rewriter.apply_patterns ~name:"canonicalize" [ fold_pattern ] root in
  let removed = Dce.run_on_op root in
  changed || removed > 0

let pass =
  Pass.make ~name:"canonicalize"
    ~description:"constant-fold arith ops and erase dead code"
    (fun module_op -> ignore (canonicalize_op module_op))

let () = Pass.register pass
