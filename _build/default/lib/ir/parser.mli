(** Recursive-descent parser for the generic IR form emitted by
    {!Printer}. Raises {!Err.Error} on malformed input. *)

(** Parse a single (possibly nested) operation. *)
val parse_string : string -> Ir.op

(** Like {!parse_string} but requires the top-level op to be
    [builtin.module]. *)
val parse_module : string -> Ir.op
