(* Dead code elimination: repeatedly erase Pure ops whose results are all
   unused.  Region-carrying pure ops are erased wholesale (the nested ops
   die with them). *)

let is_dead (op : Ir.op) =
  Dialect.has_trait (Ir.Op.name op) Dialect.Pure
  && (not (Dialect.has_trait (Ir.Op.name op) Dialect.Terminator))
  && not (Array.exists Ir.Value.has_uses op.o_results)

let run_on_op root =
  let removed = ref 0 in
  let rec fixpoint () =
    let dead =
      Ir.Op.collect root (fun op -> (not (Ir.Op.equal op root)) && is_dead op)
    in
    (* Erase in reverse pre-order so users die before producers. *)
    let erased_any = ref false in
    List.iter
      (fun op ->
        if is_dead op && op.Ir.o_parent <> None then begin
          Ir.Op.erase op;
          incr removed;
          erased_any := true
        end)
      (List.rev dead);
    if !erased_any then fixpoint ()
  in
  fixpoint ();
  !removed

let pass =
  Pass.make ~name:"dce"
    ~description:"erase pure operations whose results are unused"
    (fun module_op -> ignore (run_on_op module_op))

let () = Pass.register pass
