(** Dialect registry: op names, traits and per-op verifiers. *)

type trait =
  | Terminator  (** must be last in its block *)
  | Pure  (** no side effects: eligible for CSE/DCE *)
  | Isolated_from_above
      (** regions may not reference SSA values from enclosing scopes *)
  | Commutative

type op_info = {
  op_name : string;
  dialect : string;
  traits : trait list;
  verify : Ir.op -> (unit, Err.t) result;
}

(** Register (or re-register) an op. The dialect name is the prefix before
    the first ['.']. *)
val register :
  ?traits:trait list ->
  ?verify:(Ir.op -> (unit, Err.t) result) ->
  string ->
  unit

val lookup : string -> op_info option
val is_registered : string -> bool
val has_trait : string -> trait -> bool

(** Run the registered verifier; fails for unregistered ops. *)
val verify_op : Ir.op -> (unit, Err.t) result

val registered_ops : unit -> string list
val registered_dialects : unit -> string list
