(** Structural IR verification: registered ops, terminator placement,
    SSA def-before-use, use-def chain consistency, plus the per-op
    dialect verifiers from {!Dialect}. *)

val verify : Ir.op -> (unit, Err.t) result

(** Like {!verify} but raises {!Err.Error}. *)
val verify_exn : Ir.op -> unit
