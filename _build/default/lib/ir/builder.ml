(* Insertion-point based IR construction, mirroring MLIR's OpBuilder.
   A builder owns a current block and an insertion position; every [insert]
   drops the op at that point and advances.  Dialect modules layer typed
   constructors on top of [insert_op]. *)

type point =
  | At_end of Ir.block
  | Before of Ir.block * Ir.op
  | After of Ir.block * Ir.op

type t = { mutable point : point }

let at_end block = { point = At_end block }
let before block op = { point = Before (block, op) }
let after block op = { point = After (block, op) }

let set_at_end t block = t.point <- At_end block
let set_before t block op = t.point <- Before (block, op)
let set_after t block op = t.point <- After (block, op)

let current_block t =
  match t.point with At_end b | Before (b, _) | After (b, _) -> b

let insert t op =
  (match t.point with
  | At_end b -> Ir.Block.append b op
  | Before (b, anchor) -> Ir.Block.insert_before b ~anchor op
  | After (b, anchor) ->
    Ir.Block.insert_after b ~anchor op;
    (* keep appending after the op just inserted *)
    t.point <- After (b, op));
  op

let insert_op t ~name ?(operands = []) ?(result_tys = []) ?(attrs = [])
    ?(regions = []) () =
  insert t (Ir.Op.create ~name ~operands ~result_tys ~attrs ~regions ())

(* Insert an op expected to have exactly one result and return it. *)
let insert_op1 t ~name ?(operands = []) ~result_ty ?(attrs = []) ?(regions = [])
    () =
  let op =
    insert_op t ~name ~operands ~result_tys:[ result_ty ] ~attrs ~regions ()
  in
  Ir.Op.result op 0

(* Build a single-block region populated by [f], which receives a builder
   positioned at the end of the entry block and the block's arguments. *)
let build_region ?(arg_tys = []) f =
  let block = Ir.Block.create ~arg_tys () in
  let region = Ir.Region.create ~blocks:[ block ] () in
  let builder = at_end block in
  f builder (Ir.Block.args block);
  region
