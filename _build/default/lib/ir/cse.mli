(** Common subexpression elimination for region-free [Pure] ops. *)

(** Deduplicate within every block under [root]; returns the number of ops
    replaced. *)
val run_on_op : Ir.op -> int

val pass : Pass.t
