(** Pass manager: in-place module transformations with statistics. *)

type t = { pass_name : string; description : string; run : Ir.op -> unit }

type stat = {
  stat_pass : string;
  duration_s : float;
  ops_before : int;
  ops_after : int;
}

val make : name:string -> ?description:string -> (Ir.op -> unit) -> t

(** Global pass registry, used by the shmls-opt driver. *)
val register : t -> unit

val lookup : string -> t option
val lookup_exn : string -> t
val registered_passes : unit -> string list

(** Run one pass; optionally verify the module afterwards. *)
val run_one : ?verify:bool -> t -> Ir.op -> stat

val run_pipeline : ?verify_each:bool -> t list -> Ir.op -> stat list

(** Parse ["pass1,pass2"] into passes via the registry. *)
val parse_pipeline : string -> t list

val pp_stat : Format.formatter -> stat -> unit
