(* Dialect registry: maps op names to their verifier and traits.  Dialect
   modules register their ops explicitly (registration is idempotent); the
   verifier, CSE and DCE consult the registry. *)

type trait =
  | Terminator (* must be last in its block *)
  | Pure (* no side effects: eligible for CSE/DCE *)
  | Isolated_from_above (* regions may not reference outer SSA values *)
  | Commutative

type op_info = {
  op_name : string;
  dialect : string;
  traits : trait list;
  verify : Ir.op -> (unit, Err.t) result;
}

let registry : (string, op_info) Hashtbl.t = Hashtbl.create 128

let no_verify (_ : Ir.op) = Ok ()

let register ?(traits = []) ?(verify = no_verify) op_name =
  let dialect =
    match String.index_opt op_name '.' with
    | Some i -> String.sub op_name 0 i
    | None -> op_name
  in
  Hashtbl.replace registry op_name { op_name; dialect; traits; verify }

let lookup name = Hashtbl.find_opt registry name

let is_registered name = Hashtbl.mem registry name

let has_trait name trait =
  match lookup name with
  | Some info -> List.mem trait info.traits
  | None -> false

let verify_op op =
  match lookup (Ir.Op.name op) with
  | Some info -> info.verify op
  | None -> Err.fail "unregistered operation %S" (Ir.Op.name op)

let registered_ops () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry []
  |> List.sort String.compare

let registered_dialects () =
  Hashtbl.fold (fun _ info acc -> info.dialect :: acc) registry []
  |> List.sort_uniq String.compare
