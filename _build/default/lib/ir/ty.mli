(** The type system shared by every dialect.

    One closed variant covers the builtin, memref, llvm, stencil and hls
    type constructors; the set of dialects in this reproduction is fixed,
    so a closed type keeps pattern matches exhaustive. *)

(** Half-open integer bounds per dimension: the covered index set of a
    stencil field/temp is [lb.(d), ub.(d)) in each dimension [d]. *)
type bounds = { lb : int list; ub : int list }

type t =
  | F16
  | F32
  | F64
  | I1
  | I8
  | I16
  | I32
  | I64
  | Index
  | None_ty
  | Memref of int list * t  (** static shape; [-1] encodes a dynamic dim *)
  | Field of bounds * t  (** [stencil.field]: a named grid in external memory *)
  | Temp of bounds option * t
      (** [stencil.temp]: a value grid; bounds appear after shape inference *)
  | Stream of t  (** [hls.stream] carrying elements of the given type *)
  | Struct of t list  (** [llvm.struct] *)
  | Array of int * t  (** [llvm.array] *)
  | Ptr of t  (** [llvm.ptr] *)
  | Func of t list * t list

val equal : t -> t -> bool
val is_float : t -> bool
val is_int : t -> bool
val is_index : t -> bool
val is_scalar : t -> bool

(** Bit width of a scalar type; raises [Invalid_argument] otherwise. *)
val bitwidth : t -> int

(** Storage size in bytes for data-movement accounting. Raises
    [Invalid_argument] for unsized types (streams, functions, unbounded
    temps, none). *)
val byte_size : t -> int

val bounds_rank : bounds -> int

(** Extent per dimension, [ub - lb]. *)
val bounds_extent : bounds -> int list

(** Total number of grid points covered. *)
val bounds_points : bounds -> int

(** Smart constructor; raises [Invalid_argument] on rank mismatch or
    inverted bounds. *)
val make_bounds : lb:int list -> ub:int list -> bounds

(** Element type of a container type; identity on scalars. *)
val element : t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
