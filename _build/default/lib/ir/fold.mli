(** Constant folding and algebraic simplification for arith ops, packaged
    as the canonicalize pass. *)

(** Fold one op in place if possible; returns [true] if the IR changed. *)
val try_fold : Ir.op -> bool

val fold_pattern : Rewriter.pattern

(** Apply folding to a fixpoint then run DCE; [true] if anything changed. *)
val canonicalize_op : Ir.op -> bool

val pass : Pass.t
