(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (Section 4), plus the ablations DESIGN.md calls out
   and Bechamel micro-benchmarks of the compiler pipeline itself.

     dune exec bench/main.exe              -- run everything
     dune exec bench/main.exe -- fig4      -- one experiment
     dune exec bench/main.exe -- list      -- list experiment ids

   Experiment ids: fig4 fig5 fig6 table1 table2 analysis stencilflow
   ports ablation vck5000 bechamel.

   As in the paper, results are averaged over 10 runs; the simulator is
   deterministic, so the averaging is protocol parity rather than noise
   suppression (the Bechamel benches measure real wall-clock noise). *)

module Table = Shmls_support.Table
module Stats = Shmls_support.Stats
module PW = Shmls_kernels.Pw_advection
module TA = Shmls_kernels.Tracer_advection

let runs = 10

(* Concurrent streams of work for the experiments ([--jobs N]; 0 = the
   adaptive default, all available cores; 1 = sequential.  Results are
   order-preserving, so the tables are byte-identical either way). *)
let jobs = ref 0

let flows_of k grid =
  (* average of [runs] evaluations, per the paper's protocol *)
  let samples =
    List.init runs (fun _ -> Shmls.evaluate_all ~jobs:!jobs k ~grid)
  in
  let first = List.hd samples in
  List.mapi
    (fun i outcome ->
      match outcome with
      | Shmls.Flow.Success s ->
        let mpts =
          Stats.mean
            (List.map
               (fun sample ->
                 match List.nth sample i with
                 | Shmls.Flow.Success s' -> s'.s_est.e_mpts
                 | Shmls.Flow.Failure _ -> 0.0)
               samples)
        in
        Shmls.Flow.Success { s with s_est = { s.s_est with e_mpts = mpts } }
      | failure -> failure)
    first

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v

let section title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================================\n"

(* ------------------------------------------------------------------ *)
(* Figure 4: performance comparison in MPt/s *)

let fig4 () =
  section
    "Figure 4 -- performance of PW advection and tracer advection across\n\
     the frameworks, in MPt/s (higher is better)";
  let run_kernel name (k : Shmls.Ast.kernel) sizes =
    Printf.printf "\n%s:\n" name;
    let t =
      Table.create
        ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Left ]
        [ "size"; "Stencil-HMLS"; "DaCe"; "SODA-opt"; "Vitis HLS"; "StencilFlow" ]
    in
    List.iter
      (fun (label, grid) ->
        let cells =
          List.map
            (fun o ->
              match o with
              | Shmls.Flow.Success s -> f2 s.s_est.e_mpts
              | Shmls.Flow.Failure _ -> "--")
            (flows_of k grid)
        in
        match cells with
        | [ hmls; dace; soda; vitis; sf ] ->
          Table.add_row t
            [ label; hmls; dace; soda; vitis; (if sf = "--" then "fails" else sf) ]
        | _ -> assert false)
      sizes;
    Table.print t
  in
  run_kernel "PW advection" PW.kernel PW.sizes;
  run_kernel "tracer advection" TA.kernel TA.sizes;
  Printf.printf
    "\npaper's shape: Stencil-HMLS 90-100x over DaCe (next best) on PW\n\
     advection, 14-21x on tracer advection; DaCe absent at PW 134M\n\
     (compile failure); StencilFlow produces no runtime numbers.\n"

(* ------------------------------------------------------------------ *)
(* Figures 5 and 6: power and energy *)

let power_energy name (k : Shmls.Ast.kernel) sizes =
  Printf.printf "\n%s:\n" name;
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right ]
      [ "size"; "framework"; "avg power (W)"; "energy (J)" ]
  in
  List.iter
    (fun (label, grid) ->
      List.iter
        (fun o ->
          match o with
          | Shmls.Flow.Success s ->
            Table.add_row t
              [ label; s.s_flow; f1 s.s_power.p_total_w; f1 s.s_power.p_energy_j ]
          | Shmls.Flow.Failure f -> Table.add_row t [ label; f.f_flow; "--"; "--" ])
        (flows_of k grid))
    sizes;
  Table.print t

let fig5 () =
  section
    "Figure 5 -- average power draw and energy consumption of PW advection\n\
     (lower is better)";
  power_energy "PW advection" PW.kernel PW.sizes;
  Printf.printf
    "\npaper's shape: Stencil-HMLS draws marginally more power but consumes\n\
     85x (8M) and 92x (32M) less energy than DaCe, the next most efficient.\n"

let fig6 () =
  section
    "Figure 6 -- average power draw and energy consumption of tracer\n\
     advection (lower is better)";
  power_energy "tracer advection" TA.kernel TA.sizes;
  Printf.printf
    "\npaper's shape: 14x (8M) and 22x (33M) less energy than DaCe;\n\
     SODA-opt draws the least power but consumes far more energy.\n"

(* ------------------------------------------------------------------ *)
(* Tables 1 and 2: resource usage *)

(* paper values: (framework, size, %LUT, %FF, %BRAM, %DSP) *)
let paper_table1 =
  [
    ("Stencil-HMLS", "8M", 4.30, 3.02, 14.29, 1.31);
    ("Stencil-HMLS", "32M", 4.31, 3.03, 14.48, 1.31);
    ("Stencil-HMLS", "134M", 4.33, 3.03, 14.09, 1.31);
    ("DaCe", "8M", 8.35, 2.00, 5.51, 0.49);
    ("DaCe", "32M", 8.36, 2.00, 5.51, 0.49);
    ("SODA-opt", "8M", 0.82, 0.51, 0.10, 0.16);
    ("SODA-opt", "32M", 0.82, 0.51, 0.10, 0.16);
    ("SODA-opt", "134M", 0.82, 0.51, 0.10, 0.16);
    ("Vitis HLS", "8M", 1.10, 0.52, 0.10, 0.12);
    ("Vitis HLS", "32M", 1.10, 0.52, 0.10, 0.12);
    ("Vitis HLS", "134M", 1.11, 0.52, 0.10, 0.12);
    ("StencilFlow", "8M", 4.80, 3.06, 16.87, 3.67);
    ("StencilFlow", "32M", 4.81, 3.07, 16.87, 3.67);
  ]

let paper_table2 =
  [
    ("Stencil-HMLS", "8M", 27.05, 18.87, 62.75, 4.12);
    ("Stencil-HMLS", "33M", 27.14, 18.90, 62.75, 4.12);
    ("DaCe", "8M", 11.47, 3.65, 10.07, 0.68);
    ("DaCe", "33M", 11.52, 3.67, 10.07, 0.71);
    ("SODA-opt", "8M", 14.81, 2.79, 0.74, 0.24);
    ("SODA-opt", "33M", 14.77, 2.80, 0.74, 0.24);
    ("Vitis HLS", "8M", 14.00, 2.50, 0.74, 0.24);
    ("Vitis HLS", "33M", 14.02, 2.50, 0.74, 0.24);
  ]

let usage_of_flow (k : Shmls.Ast.kernel) grid flow_name =
  let outcomes = Shmls.evaluate_all k ~grid in
  List.find_map
    (fun o ->
      match o with
      | Shmls.Flow.Success s when s.s_flow = flow_name -> Some s.s_usage
      | _ -> None)
    outcomes

let resource_table ~title (k : Shmls.Ast.kernel) sizes paper ~with_stencilflow =
  section title;
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Left ]
      [ "framework"; "size"; "%LUT"; "%FF"; "%BRAM"; "%URAM"; "%DSP";
        "paper %LUT/%FF/%BRAM/%DSP" ]
  in
  let flows =
    [ "Stencil-HMLS"; "DaCe"; "SODA-opt"; "Vitis HLS" ]
    @ if with_stencilflow then [ "StencilFlow" ] else []
  in
  List.iter
    (fun flow ->
      List.iter
        (fun (label, grid) ->
          let usage =
            if flow = "StencilFlow" then
              (* the paper reports StencilFlow's built bitstreams even
                 though runs deadlock; use the resource model directly *)
              if label = "134M" then None
              else Some (Shmls_baselines.Stencilflow.resource_usage k)
            else usage_of_flow k grid flow
          in
          let paper_cell =
            match
              List.find_opt (fun (f, s, _, _, _, _) -> f = flow && s = label) paper
            with
            | Some (_, _, l, ff, b, d) ->
              Printf.sprintf "%.2f / %.2f / %.2f / %.2f" l ff b d
            | None -> "--"
          in
          match usage with
          | Some u ->
            let p = Shmls.Resources.to_percentages u in
            Table.add_row t
              [
                flow; label; f2 p.pct_luts; f2 p.pct_ffs; f2 p.pct_bram;
                f2 p.pct_uram; f2 p.pct_dsps; paper_cell;
              ]
          | None ->
            Table.add_row t [ flow; label; "--"; "--"; "--"; "--"; "--"; paper_cell ])
        sizes)
    flows;
  Table.print t;
  Printf.printf
    "\n(the paper's table has no URAM column; in this model the plane-sized\n\
     shift-buffer windows and delay FIFOs above 36 KiB are URAM-resident,\n\
     so our %%BRAM runs lower than the paper's for the same design -- see\n\
     DESIGN.md and EXPERIMENTS.md.)\n"

let table1 () =
  resource_table
    ~title:"Table 1 -- resource usage for the PW advection kernel"
    PW.kernel PW.sizes paper_table1 ~with_stencilflow:true

let table2 () =
  resource_table
    ~title:"Table 2 -- resource usage for the tracer advection kernel"
    TA.kernel TA.sizes paper_table2 ~with_stencilflow:false

(* ------------------------------------------------------------------ *)
(* E7: the II / speedup-decomposition analysis of Section 4 *)

let analysis () =
  section
    "Section 4 analysis -- initiation intervals and the paper's speedup\n\
     decomposition";
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right ]
      [ "kernel"; "framework"; "model II"; "paper II" ]
  in
  let add (kernel : Shmls.Ast.kernel) grid paper_iis =
    List.iter
      (fun o ->
        match o with
        | Shmls.Flow.Success s ->
          let paper =
            match List.assoc_opt s.s_flow paper_iis with
            | Some v -> v
            | None -> "--"
          in
          Table.add_row t
            [ kernel.k_name; s.s_flow; string_of_int s.s_est.e_ii; paper ]
        | Shmls.Flow.Failure _ -> ())
      (Shmls.evaluate_all kernel ~grid)
  in
  add PW.kernel PW.grid_8m [ ("Stencil-HMLS", "1"); ("DaCe", "9") ];
  add TA.kernel TA.grid_8m
    [ ("Stencil-HMLS", "1"); ("DaCe", "9"); ("SODA-opt", "164"); ("Vitis HLS", "163") ];
  Table.print t;
  (match Shmls.evaluate_all PW.kernel ~grid:PW.grid_8m with
  | Shmls.Flow.Success hmls :: Shmls.Flow.Success dace :: _ ->
    Printf.printf
      "\nPW speedup decomposition: measured %.0fx; the paper explains it as\n\
       4 (CUs) x 9 (1/9 of DaCe's II) x 3 (per-field split) = 108x, which\n\
       'roughly approximates the advantage seen in Figure 4'.\n"
      (hmls.s_est.e_mpts /. dace.s_est.e_mpts)
  | _ -> ());
  match Shmls.evaluate_all TA.kernel ~grid:TA.grid_8m with
  | Shmls.Flow.Success hmls :: Shmls.Flow.Success dace :: _ ->
    Printf.printf
      "tracer: measured %.0fx (paper: 14-21x) -- the dependency chains deny\n\
       the 3x split and the 17-port budget allows a single CU.\n"
      (hmls.s_est.e_mpts /. dace.s_est.e_mpts)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* E8: StencilFlow outcomes *)

let stencilflow () =
  section "StencilFlow outcomes (Section 4: no runtime numbers obtainable)";
  List.iter
    (fun (name, (k : Shmls.Ast.kernel), grid) ->
      match Shmls_baselines.Stencilflow.evaluate k ~grid with
      | Shmls.Flow.Success s -> Printf.printf "%-24s OK: %s\n" name s.s_note
      | Shmls.Flow.Failure f -> Printf.printf "%-24s %s\n" name f.f_reason)
    [
      ("PW advection 8M", PW.kernel, PW.grid_8m);
      ("PW advection 32M", PW.kernel, PW.grid_32m);
      ("PW advection 134M", PW.kernel, PW.grid_134m);
      ("tracer advection 8M", TA.kernel, TA.grid_8m);
      ("heat_3d (control)", Shmls_kernels.Didactic.heat_3d, [ 64; 32; 16 ]);
    ];
  Printf.printf
    "\npaper: PW compiled for 8M/32M but never finished within 10 minutes (a\n\
     likely deadlock); tracer could not be expressed (sub-selections); the\n\
     tool does reach II=1 where it runs -- matched by the control kernel.\n"

(* ------------------------------------------------------------------ *)
(* E9: port budget / CU replication *)

let ports () =
  section "Port budget and CU replication (Section 4)";
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "kernel"; "fields"; "smalls"; "ports/CU"; "CUs (32-port shell)" ]
  in
  List.iter
    (fun ((k : Shmls.Ast.kernel), grid) ->
      let c = Shmls.compile k ~grid in
      Table.add_row t
        [
          k.k_name;
          string_of_int (List.length k.k_fields);
          string_of_int (List.length k.k_smalls);
          string_of_int c.c_ports_per_cu;
          string_of_int c.c_cu;
        ])
    [ (PW.kernel, PW.grid_small); (TA.kernel, TA.grid_small) ];
  Table.print t;
  Printf.printf
    "\npaper: PW advection 7 ports/CU (one per field + one for the small\n\
     data) -> 4 CUs; tracer advection 17 ports -> 1 CU (bundling to 13\n\
     would allow 2 CUs but was rejected on performance grounds).\n"

(* ------------------------------------------------------------------ *)
(* Ablations *)

(* Every ablation is a *real* pipeline variant: the lowering itself is
   re-run with steps skipped or altered (no-split drops the per-field
   dataflow split of step 4; no-pack drops the 512-bit packing of step 2;
   cu=N pins the compute-unit replication of step 1), and the numbers are
   [estimate_design] on the resulting design — no perf-model parameter
   overrides anywhere.  Each variant design is also verified bit-exactly
   against the reference stencil interpreter on both paper kernels. *)
let ablation () =
  section "Ablations (A1-A3): the design choices behind the headline numbers";
  let variants =
    [
      ("full Stencil-HMLS design", Shmls.Variant.default);
      ( "A1: no per-field split (serialised compute)",
        { Shmls.Variant.default with v_split = false } );
      ( "A2: no 512-bit packing (scalar ports)",
        { Shmls.Variant.default with v_pack = false } );
      ( "A1+A2: neither split nor packing",
        { Shmls.Variant.default with v_split = false; v_pack = false } );
      ("A3: 1 compute unit", { Shmls.Variant.default with v_cu = Some 1 });
      ("A3: 2 compute units", { Shmls.Variant.default with v_cu = Some 2 });
      ("A3: 3 compute units", { Shmls.Variant.default with v_cu = Some 3 });
      ("A3: 4 compute units", { Shmls.Variant.default with v_cu = Some 4 });
    ]
  in
  (* bit-exactness of each variant pipeline vs the reference interpreter,
     on both paper kernels, through the sweep driver (small grids; the
     estimate grids below would take the interpreter hours) *)
  let exact variant =
    Shmls.sweep ~jobs:!jobs ~verify_designs:true ~variant
      [ (PW.kernel, PW.grid_small); (TA.kernel, TA.grid_small) ]
    |> List.fold_left
         (fun acc (_, v) ->
           match v with
           | Some v -> Float.max acc v.Shmls.v_max_diff
           | None -> acc)
         0.0
  in
  let estimate variant =
    let c = Shmls.compile_cached ~variant PW.kernel ~grid:PW.grid_8m in
    Shmls.Perf_model.estimate_design c.c_design
  in
  let base = estimate Shmls.Variant.default in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "variant (PW advection, 8M)"; "MPt/s"; "vs full design";
        "max |diff| vs interp" ]
  in
  List.iter
    (fun (name, variant) ->
      let est = estimate variant in
      Table.add_row t
        [
          name; f2 est.e_mpts;
          Printf.sprintf "%.2fx" (est.e_mpts /. base.e_mpts);
          Printf.sprintf "%g" (exact variant);
        ])
    variants;
  Table.print t;
  Printf.printf
    "\nthe paper's 108x decomposition assigns 3x to the split and 4x to CU\n\
     replication; A1 and A3 recover those factors from real compiled\n\
     pipelines.  The fused A1 design re-reads neighbourhoods straight from\n\
     external memory (no shift buffers) -- the packed ports absorb that\n\
     traffic, but combined with A2's scalar ports (A1+A2) the design\n\
     collapses to bandwidth-bound.  Every row is a real compiled pipeline\n\
     (see --variant / stencil-to-hls{variant=...}); the last column is its\n\
     bit-exactness against the reference interpreter on both paper kernels.\n"

(* ------------------------------------------------------------------ *)
(* A4: the VCK5000 future-work study *)

let vck5000 () =
  section
    "Future-work study (Section 5, item 3): CU replication when the port\n\
     budget is not the limit (VCK5000-style shell)";
  let c = Shmls.compile PW.kernel ~grid:PW.grid_8m in
  let d = c.c_design in
  let rec max_cu cu =
    if cu > 64 then 64
    else if Shmls.Resources.fits (Shmls.Resources.of_design ~cu d) then
      max_cu (cu + 1)
    else cu - 1
  in
  let fit = max_cu 1 in
  let t =
    Table.create ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "configuration"; "CUs"; "MPt/s"; "%LUT" ]
  in
  List.iter
    (fun cu ->
      let est = Shmls.Perf_model.estimate_design ~cu d in
      let u = Shmls.Resources.to_percentages (Shmls.Resources.of_design ~cu d) in
      Table.add_row t
        [
          (if cu = 4 then "U280 shell limit (32 AXI ports)"
           else if cu = fit then "resource-limited (no port limit)"
           else "");
          string_of_int cu; f2 est.e_mpts; f2 u.pct_luts;
        ])
    (List.sort_uniq compare [ 1; 2; 4; max 4 (fit / 2); fit ]);
  Table.print t;
  Printf.printf
    "\nwith the AXI port restriction lifted, PW advection replicates to %d\n\
     CUs before the U280's fabric runs out -- the further-replication\n\
     headroom the paper expects on the VCK5000.\n"
    fit

(* ------------------------------------------------------------------ *)
(* Future-work study (Section 5, item 2): static vs dynamic shapes *)

let dynamic () =
  section
    "Future-work study (Section 5, item 2): the cost of static shapes\n\
     (one bitstream per problem size)";
  (* a static-shape design always traverses its full compiled iteration
     space: running a smaller problem on the worst-case bitstream wastes
     the difference.  A dynamic-shape stencil dialect would avoid both
     that and the per-size bitstream builds. *)
  let worst = Shmls.compile PW.kernel ~grid:PW.grid_134m in
  let worst_est = Shmls.Perf_model.estimate_design worst.c_design in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "problem size"; "per-size bitstream MPt/s"; "134M bitstream MPt/s";
        "efficiency" ]
  in
  List.iter
    (fun (label, grid) ->
      let dedicated =
        Shmls.Perf_model.estimate_design (Shmls.compile PW.kernel ~grid).c_design
      in
      (* same cycles as the worst-case run, but only this size's interior
         points are useful output *)
      let interior = List.fold_left ( * ) 1 grid in
      let on_worst = float_of_int interior /. worst_est.e_seconds /. 1e6 in
      Table.add_row t
        [
          label; f2 dedicated.e_mpts; f2 on_worst;
          Printf.sprintf "%.0f%%" (100.0 *. on_worst /. dedicated.e_mpts);
        ])
    PW.sizes;
  Table.print t;
  Printf.printf
    "\neach row's dedicated bitstream is a separate synthesis run (hours on\n\
     real tooling -- the pain the paper's future work wants to remove);\n\
     reusing one worst-case bitstream costs the efficiency column.\n"

(* ------------------------------------------------------------------ *)
(* Extension: the kernel zoo (generalisation beyond the paper's kernels) *)

let zoo () =
  section
    "Extension -- the kernel zoo: the transformation generalises beyond\n\
     PW/tracer advection (bit-exactness and II~1 asserted by the tests)";
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      [ "kernel"; "halo"; "stages"; "HMLS MPt/s"; "DaCe MPt/s"; "speedup" ]
  in
  List.iter
    (fun ((k : Shmls.Ast.kernel), _) ->
      let grid =
        match k.k_rank with 2 -> [ 512; 256 ] | _ -> [ 256; 128; 64 ]
      in
      let c = Shmls.compile k ~grid in
      match Shmls.evaluate_all k ~grid with
      | Shmls.Flow.Success hmls :: Shmls.Flow.Success dace :: _ ->
        Table.add_row t
          [
            k.k_name;
            String.concat "," (List.map string_of_int c.c_design.d_halo);
            string_of_int (List.length c.c_design.d_stages);
            f2 hmls.s_est.e_mpts;
            f2 dace.s_est.e_mpts;
            Printf.sprintf "%.0fx" (hmls.s_est.e_mpts /. dace.s_est.e_mpts);
          ]
      | _ -> Table.add_row t [ k.k_name; "--"; "--"; "--"; "--"; "--" ])
    Shmls_kernels.Zoo.all;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Extension: multi-FPGA domain decomposition *)

let multi_fpga () =
  section
    "Extension -- PW advection decomposed over multiple U280s (slabs along\n\
     the streamed dimension, halo overlap; bit-exactness is asserted by\n\
     the test suite)";
  let grid = [ 128; 32; 16 ] in
  let t =
    Table.create ~aligns:[ Table.Right; Table.Right; Table.Right ]
      [ "devices"; "aggregate MPt/s"; "scaling" ]
  in
  let params = [ ("tcx", 0.12); ("tcy", 0.09) ] in
  let base = ref 0.0 in
  List.iter
    (fun slabs ->
      let r = Shmls_host.Partition.run PW.kernel ~grid ~slabs ~params () in
      let mpts = Shmls_host.Partition.aggregate_mpts ~grid r in
      if slabs = 1 then base := mpts;
      Table.add_row t
        [ string_of_int slabs; f2 mpts; Printf.sprintf "%.2fx" (mpts /. !base) ])
    [ 1; 2; 4; 8 ];
  Table.print t;
  Printf.printf
    "\n(scaling is sub-linear at this laptop-scale grid because every slab\n\
     pays the same shift-buffer fill latency; at the paper's sizes the\n\
     fill is negligible and scaling is essentially linear.)\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: cost of the pipeline itself *)

(* Where [--json PATH] asked the bechamel experiments to record their
   results machine-readably (None = stdout only). *)
let json_out : string option ref = ref None

(* Run a Bechamel suite and return (name, ns/run) rows, sorted. *)
let run_bechamel cfg tests =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw =
    Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"shmls" tests)
  in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      instance raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name v ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  List.sort compare !rows

let print_rows rows =
  List.iter
    (fun (name, est) ->
      if est >= 1e6 then Printf.printf "  %-40s %10.2f ms/run\n" name (est /. 1e6)
      else Printf.printf "  %-40s %10.1f ns/run\n" name est)
    rows

let find_row rows suffix =
  List.find_map
    (fun (name, est) ->
      let nl = String.length name and sl = String.length suffix in
      if nl >= sl && String.sub name (nl - sl) sl = suffix then Some est
      else None)
    rows

(* Micro-benchmarks of the compile-and-simulate hot paths this repo
   optimises: O(1) intrusive block appends vs the seed's [b_ops <- b_ops
   @ [op]] list representation, the worklist rewrite driver, and strided
   vs cons-list grid indexing. *)
let micro_tests () =
  let open Bechamel in
  Shmls_dialects.Register.all ();
  let n = 10_000 in
  let fold_chain_module n =
    let m = Shmls.Ir.Module_.create () in
    let _ =
      Shmls_dialects.Func.build_func m ~name:"f" ~arg_tys:[] ~result_tys:[]
        (fun b _ ->
          let x = ref (Shmls_dialects.Arith.constant_f b 1.0) in
          for _ = 1 to n do
            x := Shmls_dialects.Arith.addf b !x !x
          done;
          Shmls_dialects.Func.return_ b [])
    in
    m
  in
  let g =
    Shmls.Grid.create (Shmls.Ty.make_bounds ~lb:[ 0; 0; 0 ] ~ub:[ 64; 64; 16 ])
  in
  Shmls.Grid.init_hash g;
  (* small-grid functional-sim rows: cheap enough for the smoke run, and
     they feed the derived functional_sim_speedup entry *)
  let small = Shmls.compile_cached Shmls_kernels.Didactic.heat_3d ~grid:[ 12; 10; 8 ] in
  (* the sweep-scaling rows live in this shared subset so the CI smoke
     json carries them too (the sweep gate reads them) *)
  let sweep_bench_configs =
    [
      (Shmls_kernels.Didactic.heat_3d, [ 16; 12; 8 ]);
      (Shmls_kernels.Didactic.laplace_2d, [ 48; 32 ]);
      (Shmls_kernels.Didactic.gradient_smooth_3d, [ 16; 12; 8 ]);
      (PW.kernel, [ 24; 16; 8 ]);
    ]
  in
  (* warm the compile-cache, plan and reference-state memos so the jobs1
     and jobsN rows both measure steady-state sweeps rather than the
     first row absorbing every one-time cache fill *)
  ignore
    (Shmls.sweep ~jobs:1 ~sim:Shmls.Compiled ~verify_designs:true
       sweep_bench_configs);
  ignore
    (Shmls.sweep ~jobs:1 ~sim:Shmls.Batched ~verify_designs:true
       sweep_bench_configs);
  (* warm the tuner's configurations too, so its row measures the search
     machinery (enumeration, pruning, model evaluation, Pareto
     maintenance, frontier validation) rather than first-compile cost *)
  ignore
    (Shmls_tune.Tune.run ~max_cu:2 ~jobs:1 Shmls_kernels.Didactic.laplace_2d
       ~grids:[ [ 12; 12 ] ]);
  (* the cycle-sim engine pair runs on the full-bench PW grid even in
     the smoke subset: the event engine fast-forwards the steady state,
     and the tick oracle at this size still fits the smoke budget — the
     CI regression gate reads the derived speedup from these rows *)
  let cycle_design =
    (Shmls.compile_cached PW.kernel ~grid:[ 24; 16; 8 ]).c_design
  in
  (* multi-device scaling: ensemble cycle estimate of the same heat_3d
     grid decomposed over 1/2/4 slabs (plans prebuilt, compile cache
     hot) — the CI bench gate checks these rows stay present *)
  let md_plan devices =
    Shmls_host.Multi_device.plan ~sweeps:2 Shmls_kernels.Didactic.heat_3d
      ~grid:[ 96; 8; 6 ] ~devices
  in
  let md1 = md_plan 1 and md2 = md_plan 2 and md4 = md_plan 4 in
  [
    Test.make ~name:"multi_device_scaling_1slab"
      (Staged.stage (fun () ->
           ignore (Shmls_host.Multi_device.estimate md1)));
    Test.make ~name:"multi_device_scaling_2slab"
      (Staged.stage (fun () ->
           ignore (Shmls_host.Multi_device.estimate md2)));
    Test.make ~name:"multi_device_scaling_4slab"
      (Staged.stage (fun () ->
           ignore (Shmls_host.Multi_device.estimate md4)));
    Test.make ~name:"pipeline_cycle_sim"
      (Staged.stage (fun () ->
           ignore (Shmls.Cycle_sim.run ~engine:Shmls.Cycle_sim.Tick cycle_design)));
    Test.make ~name:"pipeline_cycle_sim_event"
      (Staged.stage (fun () ->
           ignore
             (Shmls.Cycle_sim.run ~engine:Shmls.Cycle_sim.Event cycle_design)));
    (* the design-space autotuner end to end on a small kernel: compile
       cache hot, so this is points-through-the-search-driver throughput *)
    Test.make ~name:"tune_search_throughput"
      (Staged.stage (fun () ->
           ignore
             (Shmls_tune.Tune.run ~max_cu:2 ~jobs:1
                Shmls_kernels.Didactic.laplace_2d ~grids:[ [ 12; 12 ] ])));
    (* --jobs scaling: the sweep driver with compiled-sim design
       verification, sequential vs the adaptive work-stealing pool (one
       shared plan per config, per-domain run states) *)
    Test.make ~name:"sweep_verify_compiled_jobs1"
      (Staged.stage (fun () ->
           ignore
             (Shmls.sweep ~jobs:1 ~sim:Shmls.Compiled ~verify_designs:true
                sweep_bench_configs)));
    Test.make ~name:"sweep_verify_compiled_jobsN"
      (Staged.stage (fun () ->
           ignore
             (Shmls.sweep ~jobs:0 ~sim:Shmls.Compiled ~verify_designs:true
                sweep_bench_configs)));
    Test.make ~name:"sweep_verify_batched_jobs1"
      (Staged.stage (fun () ->
           ignore
             (Shmls.sweep ~jobs:1 ~sim:Shmls.Batched ~verify_designs:true
                sweep_bench_configs)));
    Test.make ~name:"sweep_verify_batched_jobsN"
      (Staged.stage (fun () ->
           ignore
             (Shmls.sweep ~jobs:0 ~sim:Shmls.Batched ~verify_designs:true
                sweep_bench_configs)));
    Test.make ~name:"functional_sim_interp_small"
      (Staged.stage (fun () ->
           ignore (Shmls.verify ~sim:Shmls.Interp small)));
    Test.make ~name:"functional_sim_compiled_small"
      (Staged.stage (fun () ->
           ignore (Shmls.verify ~sim:Shmls.Compiled small)));
    Test.make ~name:"functional_sim_batched_small"
      (Staged.stage (fun () ->
           ignore (Shmls.verify ~sim:Shmls.Batched small)));
    Test.make ~name:"stage_compile_once_small"
      (Staged.stage (fun () ->
           ignore (Shmls.Stage_compiler.compile small.c_design)));
    Test.make ~name:"ir_block_append_10k"
      (Staged.stage (fun () ->
           let b = Shmls.Ir.Block.create () in
           for i = 0 to n - 1 do
             Shmls.Ir.Block.append b
               (Shmls.Ir.Op.create ~name:"arith.constant"
                  ~result_tys:[ Shmls.Ty.F64 ]
                  ~attrs:[ ("value", Shmls.Attr.Float (float_of_int i)) ]
                  ())
           done));
    (* the seed's block representation: append n elements with the list
       concatenation the old Block.append performed *)
    Test.make ~name:"ir_list_append_10k_seed_baseline"
      (Staged.stage (fun () ->
           let l = ref [] in
           for i = 0 to n - 1 do
             l := !l @ [ i ]
           done;
           ignore !l));
    Test.make ~name:"rewrite_driver_fold_chain_256"
      (Staged.stage (fun () ->
           let m = fold_chain_module 256 in
           let p = Shmls.Pass.lookup_exn "canonicalize" in
           p.Shmls.Pass.run m));
    Test.make ~name:"grid_sweep_strided_64x64x16"
      (Staged.stage (fun () ->
           let s = ref 0.0 in
           Shmls.Grid.iter_bounds_arr g.Shmls.Grid.bounds (fun pos ->
               s :=
                 !s
                 +. Array.unsafe_get g.Shmls.Grid.data
                      (Shmls.Grid.unsafe_linear g pos));
           ignore !s));
    Test.make ~name:"grid_sweep_list_64x64x16"
      (Staged.stage (fun () ->
           let s = ref 0.0 in
           Shmls.Grid.iter_bounds g.Shmls.Grid.bounds (fun idx ->
               s := !s +. Shmls.Grid.get g idx);
           ignore !s));
  ]

(* Demonstrate compile-once evaluation: raw pipeline runs of the first
   and second [evaluate_all] on the same kernel/grid (1 then 0). *)
let compile_once_counts () =
  Shmls.reset_compile_cache ();
  let grid = [ 16; 8; 4 ] in
  ignore (Shmls.evaluate_all PW.kernel ~grid);
  let first = Shmls.compile_runs () in
  ignore (Shmls.evaluate_all PW.kernel ~grid);
  let second = Shmls.compile_runs () - first in
  (first, second)

(* The seed repo's pipeline_functional_sim cost (BENCH_pipeline.json at
   the PR-2 baseline): the interpreter's verify on PW advection 24x16x8.
   The compiled simulator's speedup is reported against it. *)
let seed_functional_sim_ns = 140162611.8

(* BENCH_pipeline.json: machine-readable record of the micro-benchmarks
   plus the derived acceptance numbers (block-construction speedup,
   functional-sim speedup, compile-once counts). *)
let emit_json ~path rows =
  let first, second = compile_once_counts () in
  let speedup =
    match
      ( find_row rows "ir_block_append_10k",
        find_row rows "ir_list_append_10k_seed_baseline" )
    with
    | Some fast, Some slow when fast > 0.0 -> Some (slow /. fast)
    | _ -> None
  in
  let grid_speedup =
    match
      ( find_row rows "grid_sweep_strided_64x64x16",
        find_row rows "grid_sweep_list_64x64x16" )
    with
    | Some fast, Some slow when fast > 0.0 -> Some (slow /. fast)
    | _ -> None
  in
  (* interpreter vs compiled functional sim: the full PW rows when the
     full suite ran, else the small smoke rows *)
  let full_compiled = find_row rows "pipeline_functional_sim_compiled" in
  let sim_pair =
    match (find_row rows "pipeline_functional_sim", full_compiled) with
    | Some i, Some c when c > 0.0 -> Some (i, c)
    | _ -> (
      match
        ( find_row rows "functional_sim_interp_small",
          find_row rows "functional_sim_compiled_small" )
      with
      | Some i, Some c when c > 0.0 -> Some (i, c)
      | _ -> None)
  in
  (* compiled vs batched engine, same fallback scheme: the full PW rows
     when the full suite ran, else the small smoke rows *)
  let batched_pair =
    match (full_compiled, find_row rows "pipeline_functional_sim_batched") with
    | Some c, Some b when b > 0.0 -> Some (c, b)
    | _ -> (
      match
        ( find_row rows "functional_sim_compiled_small",
          find_row rows "functional_sim_batched_small" )
      with
      | Some c, Some b when b > 0.0 -> Some (c, b)
      | _ -> None)
  in
  let batched_vs_interp =
    match
      ( find_row rows "pipeline_functional_sim",
        find_row rows "pipeline_functional_sim_batched" )
    with
    | Some i, Some b when b > 0.0 -> Some (i /. b)
    | _ -> (
      match
        ( find_row rows "functional_sim_interp_small",
          find_row rows "functional_sim_batched_small" )
      with
      | Some i, Some b when b > 0.0 -> Some (i /. b)
      | _ -> None)
  in
  let jobs_scaling =
    match
      ( find_row rows "sweep_verify_compiled_jobs1",
        find_row rows "sweep_verify_compiled_jobsN" )
    with
    | Some j1, Some jn when jn > 0.0 -> Some (j1 /. jn)
    | _ -> None
  in
  (* modelled multi-device throughput scaling (deterministic, not a
     timing): aggregate MPt/s of heat_3d 96x8x6 over 4 slabs vs 1 —
     super-unity means the link charge does not swallow the split *)
  let md_scaling =
    let mpts devices =
      let p =
        Shmls_host.Multi_device.plan ~sweeps:2 Shmls_kernels.Didactic.heat_3d
          ~grid:[ 96; 8; 6 ] ~devices
      in
      Shmls_host.Multi_device.aggregate_mpts p
        (Shmls_host.Multi_device.estimate p)
    in
    let one = mpts 1 in
    if one > 0.0 then Some (mpts 4 /. one) else None
  in
  (* tick oracle vs event-driven engine on the same design (PW 24x16x8) *)
  let cycle_speedup =
    match
      (find_row rows "pipeline_cycle_sim", find_row rows "pipeline_cycle_sim_event")
    with
    | Some tick, Some event when event > 0.0 -> Some (tick /. event)
    | _ -> None
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    "  \"generated_by\": \"bench/main.exe bechamel --json\",\n";
  Buffer.add_string buf "  \"results_ns_per_run\": {\n";
  List.iteri
    (fun i (name, est) ->
      Buffer.add_string buf
        (Printf.sprintf "    %S: %.1f%s\n" name est
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"derived\": {\n";
  (match speedup with
  | Some s ->
    Buffer.add_string buf
      (Printf.sprintf "    \"block_construction_speedup_at_10k_ops\": %.1f,\n" s)
  | None -> ());
  (match grid_speedup with
  | Some s ->
    Buffer.add_string buf
      (Printf.sprintf "    \"grid_indexing_speedup\": %.1f,\n" s)
  | None -> ());
  (match sim_pair with
  | Some (i, c) ->
    Buffer.add_string buf
      (Printf.sprintf "    \"functional_sim_speedup\": %.1f,\n" (i /. c))
  | None -> ());
  (match batched_pair with
  | Some (c, b) ->
    Buffer.add_string buf
      (Printf.sprintf "    \"batched_sim_speedup\": %.2f,\n" (c /. b))
  | None -> ());
  (match batched_vs_interp with
  | Some s ->
    Buffer.add_string buf
      (Printf.sprintf "    \"batched_sim_speedup_vs_interp\": %.1f,\n" s)
  | None -> ());
  (match cycle_speedup with
  | Some s ->
    Buffer.add_string buf
      (Printf.sprintf "    \"cycle_sim_speedup\": %.1f,\n" s)
  | None -> ());
  (match md_scaling with
  | Some s ->
    Buffer.add_string buf
      (Printf.sprintf "    \"multi_device_mpts_scaling_4slab\": %.2f,\n" s)
  | None -> ());
  (match full_compiled with
  | Some c when c > 0.0 ->
    Buffer.add_string buf
      (Printf.sprintf "    \"functional_sim_compiled_ns\": %.1f,\n" c);
    Buffer.add_string buf
      (Printf.sprintf
         "    \"functional_sim_speedup_vs_seed_baseline\": %.1f,\n"
         (seed_functional_sim_ns /. c))
  | _ -> ());
  (match jobs_scaling with
  | Some s ->
    (* interpret against the machine: on a one-domain box the adaptive
       pool is a no-op, so the scaling must hover around 1.0; with
       several domains it should exceed 1 (the CI gate enforces both) *)
    Buffer.add_string buf
      (Printf.sprintf "    \"sweep_jobsN_scaling\": %.2f,\n" s);
    Buffer.add_string buf
      (Printf.sprintf "    \"sweep_effective_jobs\": %d,\n"
         (Shmls.Pool.default_jobs ()));
    Buffer.add_string buf
      (Printf.sprintf "    \"domains_available\": %d,\n"
         (Domain.recommended_domain_count ()))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "    \"compile_runs_first_evaluate_all\": %d,\n" first);
  Buffer.add_string buf
    (Printf.sprintf "    \"compile_runs_second_evaluate_all\": %d\n" second);
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nwrote %s\n" path

(* Fast subset exercising the JSON emitter, cheap enough for the dune
   runtest alias in bench/dune (tier-1). *)
let bechamel_smoke () =
  section "Bechamel smoke -- hot-path micro-benchmarks (fast subset)";
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:10 ~quota:(Time.second 0.05) () in
  let rows = run_bechamel cfg (micro_tests ()) in
  print_rows rows;
  let path = Option.value !json_out ~default:"BENCH_pipeline.json" in
  emit_json ~path rows

let bechamel () =
  section "Bechamel -- wall-clock cost of the pipeline stages (this machine)";
  let open Bechamel in
  let grid = [ 24; 16; 8 ] in
  let compiled = Shmls.compile PW.kernel ~grid in
  let tests =
    [
      (* one Test.make per table/figure-producing pipeline, per DESIGN.md's
         bench inventory, plus the pipeline stages themselves *)
      Test.make ~name:"fig4_pw_evaluate_all"
        (Staged.stage (fun () ->
             ignore (Shmls.evaluate_all PW.kernel ~grid:PW.grid_8m)));
      Test.make ~name:"fig4_tracer_evaluate_all"
        (Staged.stage (fun () ->
             ignore (Shmls.evaluate_all TA.kernel ~grid:TA.grid_8m)));
      Test.make ~name:"fig5_fig6_power_model"
        (Staged.stage (fun () ->
             let u = Shmls.Resources.of_design compiled.c_design in
             let est = Shmls.Perf_model.estimate_design compiled.c_design in
             ignore
               (Shmls.Power.of_estimate ~usage:u ~est ~bytes_per_point:48
                  ~interior:(Shmls.Design.interior_points compiled.c_design))));
      Test.make ~name:"table1_table2_resource_model"
        (Staged.stage (fun () -> ignore (Shmls.Resources.of_design compiled.c_design)));
      Test.make ~name:"pipeline_compile_pw"
        (Staged.stage (fun () -> ignore (Shmls.compile PW.kernel ~grid)));
      (* the nine-step HLS lowering alone, on a pre-lowered module (the
         functional run leaves its input intact, so reuse is safe) *)
      Test.make ~name:"pipeline_stencil_to_hls_9steps"
        (Staged.stage
           (let lowered = Shmls.Lower.lower PW.kernel ~grid in
            Shmls_transforms.Shape_inference.run_on_module
              lowered.Shmls.Lower.l_module;
            fun () ->
              ignore
                (Shmls_transforms.Stencil_to_hls.run
                   lowered.Shmls.Lower.l_module)));
      Test.make ~name:"pipeline_functional_sim"
        (Staged.stage (fun () -> ignore (Shmls.verify compiled)));
      Test.make ~name:"pipeline_functional_sim_compiled"
        (Staged.stage (fun () ->
             ignore (Shmls.verify ~sim:Shmls.Compiled compiled)));
      Test.make ~name:"pipeline_functional_sim_batched"
        (Staged.stage (fun () ->
             ignore (Shmls.verify ~sim:Shmls.Batched compiled)));
      Test.make ~name:"stage_compile_once"
        (Staged.stage (fun () ->
             ignore (Shmls.Stage_compiler.compile compiled.c_design)));
      Test.make ~name:"stage_compile_once_batched"
        (Staged.stage (fun () ->
             ignore (Shmls.Stage_compiler.compile_batched compiled.c_design)));
      Test.make ~name:"pipeline_llvm_emit_fpp"
        (Staged.stage (fun () ->
             let ll = Shmls_llvmir.Emit.emit_module compiled.c_hls_module in
             ignore (Shmls_llvmir.Fplusplus.run ll)));
    ]
  in
  let tests = tests @ micro_tests () in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let rows = run_bechamel cfg tests in
  print_rows rows;
  let path = Option.value !json_out ~default:"BENCH_pipeline.json" in
  emit_json ~path rows

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("table1", table1);
    ("table2", table2);
    ("analysis", analysis);
    ("stencilflow", stencilflow);
    ("ports", ports);
    ("ablation", ablation);
    ("vck5000", vck5000);
    ("dynamic", dynamic);
    ("multi-fpga", multi_fpga);
    ("zoo", zoo);
    ("bechamel", bechamel);
    ("bechamel-smoke", bechamel_smoke);
  ]

(* Pull "--json PATH" out of the argument list; everything left is
   experiment names. *)
let rec extract_json acc = function
  | [] -> (List.rev acc, None)
  | [ "--json" ] ->
    Printf.eprintf "--json requires a path argument\n";
    exit 1
  | "--json" :: path :: rest -> (List.rev_append acc rest, Some path)
  | x :: rest -> extract_json (x :: acc) rest

(* Pull "--jobs N" out likewise (concurrent streams of work for the
   experiment evaluations; 0 = adaptive, 1 = sequential — the tables are
   byte-identical either way). *)
let rec extract_jobs acc = function
  | [] -> (List.rev acc, None)
  | [ "--jobs" ] ->
    Printf.eprintf "--jobs requires an integer argument\n";
    exit 1
  | "--jobs" :: n :: rest -> (
    match int_of_string_opt n with
    | Some n when n >= 0 -> (List.rev_append acc rest, Some n)
    | _ ->
      Printf.eprintf "--jobs: bad worker count %S\n" n;
      exit 1)
  | x :: rest -> extract_jobs (x :: acc) rest

let () =
  match Array.to_list Sys.argv with
  | [] -> ()
  | _ :: rest -> (
    let args, json = extract_json [] rest in
    let args, j = extract_jobs [] args in
    json_out := json;
    (match j with Some n -> jobs := n | None -> ());
    match args with
    | [] ->
      Printf.printf
        "Stencil-HMLS evaluation harness -- reproducing every table and figure\n\
         of the paper (simulated U280; see DESIGN.md for the substitutions).\n";
      List.iter (fun (_, f) -> f ()) experiments
    | [ "list" ] -> List.iter (fun (name, _) -> print_endline name) experiments
    | args ->
      List.iter
        (fun arg ->
          match List.assoc_opt arg experiments with
          | Some f -> f ()
          | None ->
            Printf.eprintf "unknown experiment %S (try 'list')\n" arg;
            exit 1)
        args)
